// Package stats provides the statistical machinery the experiment harness
// uses to turn raw broadcast-time samples into the paper's claims: summary
// statistics with confidence intervals, least-squares fits, and growth-shape
// identification (is T(n) growing like log n, n^{2/3}, n, n·log n, ...?).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
	// CI95 is the half-width of the 95% confidence interval on the mean:
	// Student-t based for small samples (the experiment harness runs as few
	// as 3 trials at ScaleSmall, where the normal 1.96 understates the
	// interval by a factor of 2.2), normal-approximation beyond df 30.
	CI95 float64
}

// tCrit95 holds the two-sided 95% Student-t critical values t_{0.975, df}
// for df = 1..30; beyond that the normal 1.96 is within half a percent.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CritT95 returns the two-sided 95% critical value for the mean of an
// n-sample: the Student-t value for n-1 degrees of freedom when n-1 <= 30,
// the normal 1.96 otherwise. It returns 0 for n < 2, where no interval is
// defined.
func CritT95(n int) float64 {
	df := n - 1
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.96
	}
}

// Summarize computes descriptive statistics. It panics on an empty sample;
// callers control trial counts.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	ss := 0.0
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P10:    Quantile(sorted, 0.1),
		P90:    Quantile(sorted, 0.9),
		CI95:   CritT95(len(sorted)) * std / math.Sqrt(float64(len(sorted))),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns the
// intercept a, slope b, and coefficient of determination R².
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		// Degenerate: all x equal. Slope undefined; report flat fit.
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	ssRes := 0.0
	for i := range x {
		e := y[i] - (a + b*x[i])
		ssRes += e * e
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}

// LogLogSlope fits log(y) ≈ a + b·log(x) and returns the exponent b with
// its R². All inputs must be positive.
func LogLogSlope(x, y []float64) (b, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogSlope needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	_, b, r2 = LinearFit(lx, ly)
	return b, r2
}

// Shape is a candidate asymptotic growth shape f(n).
type Shape struct {
	Name string
	F    func(n float64) float64
}

// CandidateShapes is the shape dictionary used to classify measured
// broadcast-time growth. It covers every rate the paper proves:
// Θ(1), Θ(log n), Θ(n^{1/3}), Θ(√n), Θ(n^{2/3}), Θ(n^{2/3}·log n), Θ(n),
// Θ(n·log n), Θ(n²).
func CandidateShapes() []Shape {
	return []Shape{
		{Name: "1", F: func(n float64) float64 { return 1 }},
		{Name: "log n", F: func(n float64) float64 { return math.Log(n) }},
		{Name: "n^1/3", F: func(n float64) float64 { return math.Cbrt(n) }},
		{Name: "sqrt n", F: func(n float64) float64 { return math.Sqrt(n) }},
		{Name: "n^2/3", F: func(n float64) float64 { return math.Pow(n, 2.0/3) }},
		{Name: "n^2/3 log n", F: func(n float64) float64 { return math.Pow(n, 2.0/3) * math.Log(n) }},
		{Name: "n", F: func(n float64) float64 { return n }},
		{Name: "n log n", F: func(n float64) float64 { return n * math.Log(n) }},
		{Name: "n^2", F: func(n float64) float64 { return n * n }},
	}
}

// ShapeFit is the result of fitting one candidate shape.
type ShapeFit struct {
	Shape     string
	Constant  float64 // least-squares c (the slope c1 for affine fits)
	Intercept float64 // c0 for affine fits; 0 for pure fits
	RelErr    float64 // root-mean-square relative residual
	Affine    bool
}

// FitShape finds the candidate f with the smallest RMS relative residual
// for T(n) ≈ c·f(n) over the sweep (ns, ts), and returns all fits sorted
// best-first. Relative residuals make sizes comparable across the sweep:
// a fit that is 10% off at every n beats one that nails small n and misses
// large n by 2x.
func FitShape(ns, ts []float64) []ShapeFit {
	if len(ns) != len(ts) || len(ns) < 2 {
		panic("stats: FitShape needs two equal-length samples of size >= 2")
	}
	shapes := CandidateShapes()
	fits := make([]ShapeFit, 0, len(shapes))
	for _, s := range shapes {
		// Least squares on relative scale: minimize sum ((c f - t)/t)^2
		// => c = sum(f/t) / sum(f^2/t^2).
		num, den := 0.0, 0.0
		ok := true
		for i := range ns {
			f := s.F(ns[i])
			if ts[i] <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				ok = false
				break
			}
			num += f / ts[i]
			den += f * f / (ts[i] * ts[i])
		}
		if !ok || den == 0 {
			continue
		}
		c := num / den
		ss := 0.0
		for i := range ns {
			rel := (c*s.F(ns[i]) - ts[i]) / ts[i]
			ss += rel * rel
		}
		fits = append(fits, ShapeFit{
			Shape:    s.Name,
			Constant: c,
			RelErr:   math.Sqrt(ss / float64(len(ns))),
		})
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].RelErr < fits[j].RelErr })
	return fits
}

// BestShape returns the name of the best-fitting candidate shape.
func BestShape(ns, ts []float64) string {
	return FitShape(ns, ts)[0].Shape
}

// FitShapeAffine fits T(n) ≈ c0 + c1·f(n) for every non-constant candidate
// shape, using relative (1/t²-weighted) least squares, and returns the fits
// sorted best-first. The intercept absorbs lower-order terms that dominate
// at small n — measured broadcast times are typically a + b·f(n), and a
// pure c·f(n) fit misclassifies such data. Shapes whose best fit has a
// negative slope are dropped: broadcast times grow.
func FitShapeAffine(ns, ts []float64) []ShapeFit {
	if len(ns) != len(ts) || len(ns) < 3 {
		panic("stats: FitShapeAffine needs two equal-length samples of size >= 3")
	}
	shapes := CandidateShapes()
	fits := make([]ShapeFit, 0, len(shapes))
	for _, s := range shapes {
		if s.Name == "1" {
			continue // collinear with the intercept
		}
		var s00, s01, s11, b0, b1 float64
		ok := true
		for i := range ns {
			f := s.F(ns[i])
			if ts[i] <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				ok = false
				break
			}
			w := 1 / (ts[i] * ts[i])
			s00 += w
			s01 += w * f
			s11 += w * f * f
			b0 += w * ts[i]
			b1 += w * f * ts[i]
		}
		det := s00*s11 - s01*s01
		if !ok || math.Abs(det) < 1e-12*s00*s11 {
			continue
		}
		c0 := (s11*b0 - s01*b1) / det
		c1 := (s00*b1 - s01*b0) / det
		if c1 < 0 {
			continue
		}
		ss := 0.0
		for i := range ns {
			rel := (c0 + c1*s.F(ns[i]) - ts[i]) / ts[i]
			ss += rel * rel
		}
		fits = append(fits, ShapeFit{
			Shape:     s.Name,
			Constant:  c1,
			Intercept: c0,
			RelErr:    math.Sqrt(ss / float64(len(ns))),
			Affine:    true,
		})
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].RelErr < fits[j].RelErr })
	return fits
}

// RatioBand returns min and max of ts[i]/us[i]; the Theorem 1 experiments
// use it to check that two protocols stay within a constant factor.
func RatioBand(ts, us []float64) (lo, hi float64, err error) {
	if len(ts) != len(us) || len(ts) == 0 {
		return 0, 0, fmt.Errorf("stats: RatioBand needs equal non-empty slices")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range ts {
		if us[i] == 0 {
			return 0, 0, fmt.Errorf("stats: RatioBand division by zero at %d", i)
		}
		r := ts[i] / us[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi, nil
}

// Running accumulates a sample incrementally and produces the exact
// Summary that Summarize would compute over the values added so far. The
// serving layer feeds it one broadcast time per emitted trial, so a
// partially streamed job can report its running distribution at any
// point. Quantiles require the retained sample, so memory is O(n) — fine
// at trial counts, by design not a reservoir sketch.
type Running struct {
	xs []float64
}

// Add incorporates x.
func (r *Running) Add(x float64) { r.xs = append(r.xs, x) }

// N returns the number of samples added.
func (r *Running) N() int { return len(r.xs) }

// Summary summarizes the samples added so far. Like Summarize it panics on
// an empty accumulator; callers gate on N.
func (r *Running) Summary() Summary { return Summarize(r.xs) }

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }
