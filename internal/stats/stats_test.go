package stats

import (
	"math"
	"testing"
	"testing/quick"

	"rumor/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %g", s.Mean)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %g", s.Median)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %g", s.Std)
	}
}

// TestCritT95 pins the critical values against the standard t-table:
// t_{0.975, df} for small df, converging to the normal 1.96 for large N.
func TestCritT95(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{2, 12.706}, // df 1
		{3, 4.303},  // df 2 — the ScaleSmall trial count
		{4, 3.182},
		{5, 2.776},
		{10, 2.262}, // df 9
		{21, 2.086}, // df 20
		{30, 2.045}, // df 29
		{31, 2.042}, // df 30, last tabulated
		{32, 1.96},  // beyond the table: normal approximation
		{1000, 1.96},
	}
	for _, c := range cases {
		if got := CritT95(c.n); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("CritT95(%d) = %g, want %g", c.n, got, c.want)
		}
	}
	if got := CritT95(1); got != 0 {
		t.Errorf("CritT95(1) = %g, want 0 (no interval for a single sample)", got)
	}
}

// TestSummarizeCI95StudentT: small samples must use the Student-t
// half-width. With 3 trials the normal 1.96 would understate the interval
// by a factor of 2.2.
func TestSummarizeCI95StudentT(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	// std = 2, so CI95 = t_{0.975,2} * 2 / sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if !almostEqual(s.CI95, want, 1e-9) {
		t.Errorf("CI95 = %g, want %g (Student-t, df=2)", s.CI95, want)
	}
	// A large sample falls back to the normal approximation.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	sb := Summarize(big)
	wantBig := 1.96 * sb.Std / math.Sqrt(100)
	if !almostEqual(sb.CI95, wantBig, 1e-9) {
		t.Errorf("large-sample CI95 = %g, want %g (normal)", sb.CI95, wantBig)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.CI95 != 0 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {0.25, 17.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(x, y)
	if !almostEqual(a, 3, 1e-9) || !almostEqual(b, 2, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("fit = (%g, %g, %g), want (3, 2, 1)", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b, r2 := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || r2 != 0 || !almostEqual(a, 2, 1e-9) {
		t.Errorf("degenerate fit = (%g, %g, %g)", a, b, r2)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 4 n^1.5
	x := []float64{2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 4 * math.Pow(x[i], 1.5)
	}
	b, r2 := LogLogSlope(x, y)
	if !almostEqual(b, 1.5, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("LogLogSlope = (%g, %g), want (1.5, 1)", b, r2)
	}
}

func TestFitShapeRecoversKnownShapes(t *testing.T) {
	ns := []float64{512, 1024, 2048, 4096, 8192, 16384}
	gen := func(f func(n float64) float64, c float64) []float64 {
		out := make([]float64, len(ns))
		for i, n := range ns {
			out[i] = c * f(n)
		}
		return out
	}
	cases := []struct {
		want string
		f    func(n float64) float64
	}{
		{"log n", math.Log},
		{"n", func(n float64) float64 { return n }},
		{"n log n", func(n float64) float64 { return n * math.Log(n) }},
		{"n^2/3", func(n float64) float64 { return math.Pow(n, 2.0/3) }},
		{"sqrt n", math.Sqrt},
		{"n^2", func(n float64) float64 { return n * n }},
	}
	for _, c := range cases {
		ts := gen(c.f, 3.7)
		if got := BestShape(ns, ts); got != c.want {
			t.Errorf("BestShape for %s data = %s", c.want, got)
		}
	}
}

func TestFitShapeNoisy(t *testing.T) {
	// 15% multiplicative noise must not flip log n into a polynomial.
	rng := xrand.New(2024)
	ns := []float64{512, 1024, 2048, 4096, 8192, 16384, 32768}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		noise := 1 + 0.15*(2*rng.Float64()-1)
		ts[i] = 5 * math.Log(n) * noise
	}
	if got := BestShape(ns, ts); got != "log n" {
		t.Errorf("noisy log n classified as %s", got)
	}
}

func TestFitShapeConstantRecovered(t *testing.T) {
	ns := []float64{100, 200, 400}
	ts := []float64{42, 42, 42}
	fits := FitShape(ns, ts)
	if fits[0].Shape != "1" {
		t.Fatalf("constant data classified as %s", fits[0].Shape)
	}
	if !almostEqual(fits[0].Constant, 42, 1e-9) {
		t.Errorf("constant = %g, want 42", fits[0].Constant)
	}
}

func TestRatioBand(t *testing.T) {
	lo, hi, err := RatioBand([]float64{2, 6, 4}, []float64{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 3 {
		t.Errorf("RatioBand = (%g, %g), want (2, 3)", lo, hi)
	}
	if _, _, err := RatioBand([]float64{1}, []float64{0}); err == nil {
		t.Error("division by zero not reported")
	}
	if _, _, err := RatioBand([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not reported")
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := xrand.New(55)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if !almostEqual(w.Mean(), s.Mean, 1e-9) {
		t.Errorf("Welford mean %g vs %g", w.Mean(), s.Mean)
	}
	if !almostEqual(w.Std(), s.Std, 1e-9) {
		t.Errorf("Welford std %g vs %g", w.Std(), s.Std)
	}
	if w.N() != s.N {
		t.Errorf("Welford n %d vs %d", w.N(), s.N)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not usable")
	}
}

// TestQuickQuantileBounds: quantiles never leave [min, max] and are monotone
// in q.
func TestQuickQuantileBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		prev := math.Inf(-1)
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(sorted, q)
			if v < s.Min-1e-9 || v > s.Max+1e-9 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestFitShapeAffineRecoversOffsetData(t *testing.T) {
	// T(n) = 25 + 9·ln n: a pure c·f(n) fit drifts toward small powers of
	// n, but the affine fit must identify log n exactly.
	ns := []float64{128, 256, 512, 1024, 2048}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 25 + 9*math.Log(n)
	}
	fits := FitShapeAffine(ns, ts)
	if len(fits) == 0 {
		t.Fatal("no affine fits")
	}
	best := fits[0]
	if best.Shape != "log n" {
		t.Fatalf("affine best = %s, want log n", best.Shape)
	}
	if !almostEqual(best.Constant, 9, 1e-6) || !almostEqual(best.Intercept, 25, 1e-5) {
		t.Errorf("affine fit = %.3f + %.3f·f, want 25 + 9·f", best.Intercept, best.Constant)
	}
	if !best.Affine {
		t.Error("Affine flag not set")
	}
}

func TestFitShapeAffineSkipsDecreasingShapes(t *testing.T) {
	// Strictly decreasing data has no growth shape with positive slope.
	ns := []float64{100, 200, 400, 800}
	ts := []float64{100, 50, 25, 12.5}
	for _, f := range FitShapeAffine(ns, ts) {
		if f.Constant < 0 {
			t.Errorf("negative-slope fit %s leaked through", f.Shape)
		}
	}
}

func TestFitShapeAffineTooFewPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with 2 points")
		}
	}()
	FitShapeAffine([]float64{1, 2}, []float64{1, 2})
}

func TestFitShapeAffineAffineLinear(t *testing.T) {
	// T(n) = 100 + 0.5·n.
	ns := []float64{256, 512, 1024, 2048}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 100 + 0.5*n
	}
	best := FitShapeAffine(ns, ts)[0]
	if best.Shape != "n" {
		t.Fatalf("affine best = %s, want n", best.Shape)
	}
}

func TestRunningMatchesSummarize(t *testing.T) {
	xs := []float64{9, 2, 7, 4, 4, 11, 3.5, 8, 1, 6}
	var r Running
	for i, x := range xs {
		r.Add(x)
		if r.N() != i+1 {
			t.Fatalf("N = %d after %d adds", r.N(), i+1)
		}
		got := r.Summary()
		want := Summarize(xs[:i+1])
		if got != want {
			t.Fatalf("after %d adds: Running.Summary() = %+v, want %+v", i+1, got, want)
		}
	}
}
