package lru

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestPutReplace(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("replace: got %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetOrBuildBuildsOnce(t *testing.T) {
	c := New[string, int](4)
	var builds atomic.Int32
	const workers = 16
	var wg sync.WaitGroup
	got := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = c.GetOrBuild("k", func() int {
				builds.Add(1)
				return 42
			})
		}(w)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for w, v := range got {
		if v != 42 {
			t.Fatalf("worker %d got %d", w, v)
		}
	}
}

func TestGetOrBuildEvictionRebuilds(t *testing.T) {
	c := New[int, int](2)
	builds := 0
	get := func(k int) int {
		return c.GetOrBuild(k, func() int { builds++; return k * 10 })
	}
	get(1)
	get(2)
	get(3) // evicts 1
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	if v := get(1); v != 10 { // rebuilt after eviction
		t.Fatalf("get(1) = %d, want 10", v)
	}
	if builds != 4 {
		t.Fatalf("builds after rebuild = %d, want 4", builds)
	}
	if v := get(3); v != 30 { // still resident: no rebuild
		t.Fatalf("get(3) = %d", v)
	}
	if builds != 4 {
		t.Fatalf("builds after hit = %d, want 4", builds)
	}
}

func TestGetDoesNotSeeUnfinishedBuild(t *testing.T) {
	c := New[string, int](2)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		done <- c.GetOrBuild("slow", func() int {
			close(started)
			<-release
			return 7
		})
	}()
	<-started
	if _, ok := c.Get("slow"); ok {
		t.Fatal("Get returned a value whose build has not finished")
	}
	close(release)
	if v := <-done; v != 7 {
		t.Fatalf("build returned %d", v)
	}
	if v, ok := c.Get("slow"); !ok || v != 7 {
		t.Fatalf("Get after build = %d, %v", v, ok)
	}
}

func TestCapFloor(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", c.Cap())
	}
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestPutDuringInflightBuild(t *testing.T) {
	// Put on a key whose builder is still running must detach the
	// in-flight entry completely: its later "eviction" must not delete the
	// fresh entry's map slot or skew the recency list.
	c := New[string, int](2)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		done <- c.GetOrBuild("k", func() int {
			close(started)
			<-release
			return 1
		})
	}()
	<-started
	c.Put("k", 2)
	close(release)
	if v := <-done; v != 1 {
		t.Fatalf("in-flight builder's caller got %d, want its own build (1)", v)
	}
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("Get(k) = %d, %v; want the Put value 2", v, ok)
	}
	// Churn the cache past capacity; the map and list must stay in sync.
	c.Put("a", 10)
	c.Put("b", 20) // capacity 2: evicts the least recently used of k/a
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing after churn")
	}
	c.Put("c", 30)
	c.Put("d", 40)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after more churn, want 2", c.Len())
	}
	if v, ok := c.Get("d"); !ok || v != 40 {
		t.Fatalf("Get(d) = %d, %v", v, ok)
	}
}

func TestGetOrBuildErrNotCached(t *testing.T) {
	c := New[string, int](2)
	c.Put("resident", 1)
	c.Put("resident2", 2)
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 3; i++ {
		v, err := c.GetOrBuildErr("bad", func() (int, error) { builds++; return 0, boom })
		if err != boom || v != 0 {
			t.Fatalf("attempt %d: got %d, %v", i, v, err)
		}
	}
	if builds != 3 {
		t.Fatalf("failed builds ran %d times, want 3 (errors are not cached)", builds)
	}
	// Failures never take recency slots: the residents must survive.
	if _, ok := c.Get("resident"); !ok {
		t.Fatal("failed builds evicted a resident entry")
	}
	if _, ok := c.Get("resident2"); !ok {
		t.Fatal("failed builds evicted a resident entry")
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("failed key reported as cached")
	}
	if c.Evictions() != 0 {
		t.Fatalf("Evictions = %d, want 0", c.Evictions())
	}
	// A later successful build caches normally.
	v, err := c.GetOrBuildErr("bad", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("recovery build: %d, %v", v, err)
	}
	if v, ok := c.Get("bad"); !ok || v != 7 {
		t.Fatalf("recovered key not cached: %d, %v", v, ok)
	}
}

func TestGetOrBuildErrConcurrentFailure(t *testing.T) {
	// Every concurrent caller of a failing key gets the error — whether it
	// shared the in-flight build or arrived after the failure was dropped
	// from the map and triggered a rebuild (failures are not cached, so
	// the build count here is 1..workers by design).
	c := New[string, int](2)
	boom := errors.New("boom")
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = c.GetOrBuildErr("k", func() (int, error) {
				return 0, boom
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != boom {
			t.Fatalf("worker %d: err = %v, want boom", w, err)
		}
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed key cached")
	}
}

// TestOnEvictCapacityOnly: the observer sees exactly the entries the size
// bound displaces — not replacements, not Deletes — with key and value.
func TestOnEvictCapacityOnly(t *testing.T) {
	c := New[string, int](2)
	var mu sync.Mutex
	evicted := map[string]int{}
	c.OnEvict(func(k string, v int) {
		mu.Lock()
		evicted[k] = v
		mu.Unlock()
	})
	c.Put("a", 1)
	c.Put("a", 9) // replacement: not an eviction
	c.Put("b", 2)
	c.Delete("b") // explicit removal: not an eviction
	c.Put("b", 2)
	c.Put("c", 3) // capacity: evicts "a"
	if len(evicted) != 1 || evicted["a"] != 9 {
		t.Fatalf("evicted = %v, want only a:9", evicted)
	}
	// GetOrBuild completions take recency slots and can evict too.
	c.GetOrBuild("d", func() int { return 4 })
	if len(evicted) != 2 || evicted["b"] != 2 {
		t.Fatalf("evicted = %v, want a:9 and b:2", evicted)
	}
}

// TestOnEvictReentrant: the observer runs outside the cache lock, so it
// may call back into the cache — even re-inserting the evicted key —
// without deadlock.
func TestOnEvictReentrant(t *testing.T) {
	c := New[string, int](1)
	var calls atomic.Int32
	c.OnEvict(func(k string, v int) {
		// First-level eviction only: re-inserting evicts again; don't loop.
		if calls.Add(1) == 1 {
			if _, ok := c.Get(k); ok {
				t.Errorf("evicted key %q still resident inside observer", k)
			}
			c.Put("observer", v)
		}
	})
	c.Put("a", 1)
	c.Put("b", 2) // evicts a -> observer Puts "observer" -> evicts b
	if calls.Load() != 2 {
		t.Fatalf("observer ran %d times, want 2", calls.Load())
	}
	if _, ok := c.Get("observer"); !ok {
		t.Fatal("observer's own Put lost")
	}
}

// TestSetCostBudgetEviction: with a pricing function installed, inserts
// evict from the LRU end until the total cost fits the budget, even with
// the entry-count bound far from exhausted — a handful of expensive
// values cannot pin unbounded memory behind a generous slot count.
func TestSetCostBudgetEviction(t *testing.T) {
	c := New[string, int](64)
	c.SetCost(100, func(k string, v int) int64 { return int64(v) })
	c.Put("a", 40)
	c.Put("b", 40)
	if total, budget := c.Cost(); total != 80 || budget != 100 {
		t.Fatalf("cost = %d/%d, want 80/100", total, budget)
	}
	c.Put("c", 40) // 120 > 100: evict a (LRU)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived budget eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted though evicting a sufficed")
	}
	if total, _ := c.Cost(); total != 80 {
		t.Fatalf("total = %d after eviction, want 80", total)
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
}

// TestSetCostKeepsNewestOverBudgetEntry: one value larger than the whole
// budget still caches — evicting the entry just inserted would make the
// cache useless for every oversized key.
func TestSetCostKeepsNewestOverBudgetEntry(t *testing.T) {
	c := New[string, int](8)
	c.SetCost(10, func(k string, v int) int64 { return int64(v) })
	c.Put("small", 1)
	c.Put("huge", 1000) // over budget alone; evicts small, keeps huge
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("over-budget entry not cached")
	}
	if _, ok := c.Get("small"); ok {
		t.Fatal("small survived while the budget was blown")
	}
	if total, _ := c.Cost(); total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
}

// TestSetCostMixedSizes is the graph-cache regression shape: many cheap
// entries and one expensive one coexist under the same budget, with the
// cheap ones never displaced by count pressure alone.
func TestSetCostMixedSizes(t *testing.T) {
	c := New[string, int](64)
	c.SetCost(1000, func(k string, v int) int64 { return int64(v) })
	c.Put("big", 900)
	for i := 0; i < 20; i++ {
		c.Put(string(rune('a'+i)), 4) // 80 total alongside big: fits
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("big evicted though everything fit")
	}
	c.Put("big2", 900) // 900+80+900 > 1000: evicts big and some cheap ones
	if _, ok := c.Get("big"); ok {
		t.Fatal("big survived a second big insert under a 1000 budget")
	}
	if _, ok := c.Get("big2"); !ok {
		t.Fatal("big2 not resident")
	}
	if total, _ := c.Cost(); total > 1000 {
		t.Fatalf("total = %d exceeds budget after evictions", total)
	}
}

// TestSetCostDeleteRefunds: Delete returns an entry's cost to the budget.
func TestSetCostDeleteRefunds(t *testing.T) {
	c := New[string, int](8)
	c.SetCost(100, func(k string, v int) int64 { return int64(v) })
	c.Put("a", 60)
	c.Delete("a")
	if total, _ := c.Cost(); total != 0 {
		t.Fatalf("total = %d after delete, want 0", total)
	}
	c.Put("b", 60)
	c.Put("c", 30)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted though a's cost was refunded")
	}
}

// TestSetCostDisable: removing the bound stops pricing new entries.
func TestSetCostDisable(t *testing.T) {
	c := New[string, int](8)
	c.SetCost(10, func(k string, v int) int64 { return int64(v) })
	c.Put("a", 5)
	c.SetCost(0, nil)
	c.Put("b", 1000) // no pricing, no budget: both stay
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted with bound removed")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b not cached with bound removed")
	}
}

// TestMoveToFrontFromMiddle covers the recency splice for an entry that is
// neither head nor tail, with cost accounting intact across the move.
func TestMoveToFrontFromMiddle(t *testing.T) {
	c := New[string, int](3)
	c.SetCost(100, func(k string, v int) int64 { return int64(v) })
	c.Put("a", 10)
	c.Put("b", 20)
	c.Put("c", 30)
	if _, ok := c.Get("b"); !ok { // middle of the list
		t.Fatal("b missing")
	}
	if total, _ := c.Cost(); total != 60 {
		t.Fatalf("total = %d after Get, want 60 (Get must not reprice)", total)
	}
	c.Put("d", 10) // count bound evicts LRU = a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived; recency order broken by middle splice")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted despite being freshened")
	}
}
