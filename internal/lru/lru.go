// Package lru provides the size-bounded LRU cache behind the serving
// layer's completed-result cache and the experiment harness's graph
// memoization.
//
// Beyond plain Get/Put recency semantics, GetOrBuild gives each key
// build-exactly-once semantics under concurrency: the first caller for a
// key runs the builder while every concurrent caller for the same key
// blocks on the entry's sync.Once and receives the same value — the
// property the graph cache needs so two racing sweeps never both pay a
// paper-scale construction. Only completed entries occupy recency slots:
// an in-flight build neither evicts anything nor can be evicted, and a
// caller that decides its built value is not worth keeping (a failed
// graph construction, say) can Delete the key without ever having
// displaced a resident entry.
//
// Values are immutable once published: Put replaces the entry rather
// than overwriting its value, so readers that obtained an entry never
// race a writer.
//
// OnEvict installs a callback observing capacity evictions — the hook the
// serving layer's disk spill tier hangs off: an entry displaced by the
// size bound is handed to the callback (outside the cache lock) instead
// of vanishing. Replacements and explicit Deletes are not evictions and
// do not fire it.
package lru

import (
	"sync"
	"sync/atomic"
)

// entry is one cached key. Entries are nodes of an intrusive doubly-linked
// recency list guarded by the cache mutex; val is written exactly once,
// before ready is set, and never mutated afterwards (ready.Load provides
// the acquire edge for lock-free reads after once.Do).
type entry[K comparable, V any] struct {
	key        K
	once       sync.Once
	ready      atomic.Bool
	val        V
	err        error // failed build (GetOrBuildErr); never cached
	linked     bool  // member of the recency list (completed entries only)
	cost       int64 // charged against the byte budget while linked
	prev, next *entry[K, V]
}

// Cache is a size-bounded LRU map. The zero value is not usable; construct
// with New. All methods are safe for concurrent use. Builders passed to
// GetOrBuild run outside the cache lock, so they may themselves use the
// cache (for different keys) without deadlock.
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	cap       int
	m         map[K]*entry[K, V]
	head      *entry[K, V] // most recently used
	tail      *entry[K, V] // least recently used
	nlinked   int          // completed entries in the recency list
	evictions int64
	onEvict   func(K, V) // capacity-eviction observer; may be nil

	// Byte-cost bound (SetCost): entries are charged costFn at link time
	// and eviction additionally runs while totalCost exceeds budget. An
	// entry-count bound alone lets 64 giant graphs pin hundreds of
	// gigabytes while 64 tiny ones waste the slots; the cost bound makes
	// residency proportional to what entries actually hold.
	costFn    func(K, V) int64
	budget    int64
	totalCost int64
}

// New returns a cache bounded to cap completed entries. cap < 1 is
// treated as 1: a cache that can hold nothing would turn GetOrBuild into
// "build every time" while still paying the locking.
func New[K comparable, V any](cap int) *Cache[K, V] {
	if cap < 1 {
		cap = 1
	}
	return &Cache[K, V]{cap: cap, m: make(map[K]*entry[K, V], cap+1)}
}

// OnEvict installs fn as the capacity-eviction observer: every entry the
// size bound displaces is passed to fn after the cache lock is released,
// so fn may use the cache (even for the evicted key) without deadlock.
// Entries removed by Delete or replaced by Put are not evictions and are
// not observed. Install the observer before the cache is shared; a nil fn
// removes it.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// SetCost bounds the cache by total entry cost in addition to the entry
// count: fn prices each entry when it links into the recency list, and
// insertion evicts from the LRU end while the total exceeds budget. The
// most recent entry is never evicted by the cost bound, so a single
// over-budget value still caches (evicting it would degrade GetOrBuild
// to build-every-time for every key). budget <= 0 or a nil fn removes
// the bound. Install before the cache is shared, like OnEvict; costs are
// sampled once per residency, so fn should price immutable state.
func (c *Cache[K, V]) SetCost(budget int64, fn func(K, V) int64) {
	c.mu.Lock()
	c.costFn = fn
	c.budget = budget
	c.mu.Unlock()
}

// Cost returns the total cost of linked entries and the budget. Both are
// zero until SetCost installs a pricing function.
func (c *Cache[K, V]) Cost() (total, budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalCost, c.budget
}

// Get returns the value cached for k, marking it most recently used.
// Entries whose builder has not finished yet are reported as misses: the
// value does not exist until the builder returns.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok || !e.ready.Load() || e.err != nil {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put caches v under k, marks it most recently used, and evicts
// least-recently-used entries beyond capacity. Any previous entry —
// completed or with its builder still in flight — is replaced, never
// mutated: builders already holding the old entry still hand their
// callers the value they build.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	c.detach(k)
	e := &entry[K, V]{key: k, val: v}
	e.once.Do(func() {})
	e.ready.Store(true)
	c.m[k] = e
	evicted, fn := c.link(e), c.onEvict
	c.mu.Unlock()
	fire(fn, evicted)
}

// fire hands capacity-evicted entries to the observer. Runs with the
// cache lock released.
func fire[K comparable, V any](fn func(K, V), evicted []*entry[K, V]) {
	if fn == nil {
		return
	}
	for _, e := range evicted {
		fn(e.key, e.val)
	}
}

// Delete removes k if present. An in-flight build of k finishes normally
// for the callers sharing it but is not retained.
func (c *Cache[K, V]) Delete(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.detach(k)
}

// GetOrBuild returns the value cached for k, building it with build on
// first use. Concurrent callers for the same key share one build: all
// block until the first caller's build returns, then receive its value.
// build runs outside the cache lock. The entry takes a recency slot (and
// may evict) only once the build completes.
func (c *Cache[K, V]) GetOrBuild(k K, build func() V) V {
	v, _ := c.GetOrBuildErr(k, func() (V, error) { return build(), nil })
	return v
}

// GetOrBuildErr is GetOrBuild for fallible builders. A build error is
// returned to every caller sharing that build and is never cached: the
// failed entry takes no recency slot (so a stream of invalid keys cannot
// evict resident values) and the key rebuilds on next use.
func (c *Cache[K, V]) GetOrBuildErr(k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		if e.ready.Load() {
			c.moveToFront(e)
		}
	} else {
		e = &entry[K, V]{key: k}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = build()
		e.ready.Store(true)
		c.mu.Lock()
		// Link only if the build succeeded and the key still maps to this
		// entry (it may have been Put-replaced or Deleted while building);
		// forget failures entirely.
		var evicted []*entry[K, V]
		if c.m[k] == e {
			if e.err != nil {
				delete(c.m, k)
			} else {
				evicted = c.link(e)
			}
		}
		fn := c.onEvict
		c.mu.Unlock()
		fire(fn, evicted)
	})
	return e.val, e.err
}

// Len returns the number of resident entries (including ones whose
// builders are still running).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the capacity bound.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Evictions returns the number of entries evicted so far.
func (c *Cache[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// detach removes k's entry from the map and, if linked, the recency
// list. Caller holds mu.
func (c *Cache[K, V]) detach(k K) {
	e, ok := c.m[k]
	if !ok {
		return
	}
	if e.linked {
		c.unlink(e)
	}
	delete(c.m, k)
}

// link puts a completed entry at the front of the recency list, evicts
// past capacity, and returns the evicted entries for the caller to hand
// to the observer once mu is released. Caller holds mu.
func (c *Cache[K, V]) link(e *entry[K, V]) []*entry[K, V] {
	e.linked = true
	c.nlinked++
	if c.costFn != nil {
		e.cost = c.costFn(e.key, e.val)
		c.totalCost += e.cost
	}
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	// Evict from the tail; only linked (completed) entries are in the
	// list, so in-flight builds are never displaced. The cost bound never
	// evicts the entry just linked (nlinked > 1 guard).
	var evicted []*entry[K, V]
	for c.nlinked > c.cap || (c.budget > 0 && c.totalCost > c.budget && c.nlinked > 1) {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
		evicted = append(evicted, lru)
	}
	return evicted
}

// moveToFront marks e most recently used by splicing it to the list head
// in place: nlinked and totalCost are untouched, so a Get can never
// trigger an eviction — only insertions do. Caller holds mu.
func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if !e.linked || c.head == e {
		return
	}
	// e is not the head, so e.prev != nil and c.head != nil.
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	c.head.prev = e
	c.head = e
}

// unlink removes e from the recency list. Caller holds mu.
func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
	c.nlinked--
	c.totalCost -= e.cost
	e.cost = 0
}
