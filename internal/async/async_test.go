package async

import (
	"math"
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestRunValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := Run(g, 99, xrand.New(1), Config{Protocol: Push}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(g, 0, xrand.New(1), Config{Protocol: "bogus"}); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestCompletesOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Complete(32),
		graph.Cycle(20),
		graph.Star(20),
		graph.Hypercube(6),
		graph.Grid2D(5, 5),
	}
	for _, g := range gs {
		for _, p := range []Protocol{Push, PushPull} {
			res, err := Run(g, 0, xrand.New(3), Config{Protocol: p})
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), p, err)
			}
			if !res.Completed {
				t.Errorf("%s/%s incomplete", g.Name(), p)
			}
			if res.Time <= 0 || res.Activations <= 0 {
				t.Errorf("%s/%s: time %.2f activations %d", g.Name(), p, res.Time, res.Activations)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.Hypercube(7)
	a, err := Run(g, 0, xrand.New(9), Config{Protocol: PushPull})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 0, xrand.New(9), Config{Protocol: PushPull})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Activations != b.Activations {
		t.Error("same seed diverged")
	}
}

func TestMaxTimeCutoff(t *testing.T) {
	g := graph.Cycle(128)
	res, err := Run(g, 0, xrand.New(2), Config{Protocol: Push, MaxTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("cycle(128) async push completed within 1 time unit")
	}
	if res.Time != 1 {
		t.Errorf("Time = %.2f, want the cutoff 1", res.Time)
	}
}

// TestActivationsPerUnitTime: activations happen at total rate n, so the
// count divided by the elapsed time should concentrate near n.
func TestActivationsPerUnitTime(t *testing.T) {
	g := graph.Cycle(256) // slow broadcast => many activations, tight ratio
	res, err := Run(g, 0, xrand.New(5), Config{Protocol: Push})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Activations) / res.Time
	if math.Abs(rate-256) > 30 {
		t.Errorf("activation rate %.1f, want about 256", rate)
	}
}

// TestAsyncPushMatchesSyncOnCompleteGraph: on K_n both the synchronous
// round count and the asynchronous time are Θ(log n); their ratio should
// be a modest constant ([41]).
func TestAsyncPushMatchesSyncShape(t *testing.T) {
	means := func(n int) float64 {
		g := graph.Complete(n)
		sum := 0.0
		const trials = 5
		for seed := uint64(0); seed < trials; seed++ {
			res, err := Run(g, 0, xrand.New(seed), Config{Protocol: Push})
			if err != nil || !res.Completed {
				t.Fatalf("n=%d: %v", n, err)
			}
			sum += res.Time
		}
		return sum / trials
	}
	t256, t1024 := means(256), means(1024)
	// Θ(log n): doubling n twice adds ~2·ln 2 ≈ 1.4 time units per constant;
	// reject if growth looks linear (ratio near 4).
	if ratio := t1024 / t256; ratio > 2 {
		t.Errorf("async push time grew %.2fx from n=256 to n=1024; want logarithmic growth", ratio)
	}
}

// TestPushNeverPulls: under async push an uninformed node's activation
// cannot inform it. Source in a star center: leaves activate but must not
// pull. So only center activations (rate 1) inform leaves: completion needs
// many center activations => time Ω(n log n)-ish, far exceeding push-pull.
func TestPushNeverPulls(t *testing.T) {
	g := graph.Star(64)
	push, err := Run(g, 0, xrand.New(7), Config{Protocol: Push})
	if err != nil {
		t.Fatal(err)
	}
	ppull, err := Run(g, 0, xrand.New(7), Config{Protocol: PushPull})
	if err != nil {
		t.Fatal(err)
	}
	if !push.Completed || !ppull.Completed {
		t.Fatal("incomplete")
	}
	if push.Time < 10*ppull.Time {
		t.Errorf("async push (%.1f) should be far slower than push-pull (%.1f) on the star",
			push.Time, ppull.Time)
	}
}

// TestQuickCompletes: random regular graphs complete under both protocols
// with sane times.
func TestQuickCompletes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 16 + 2*rng.IntN(40)
		d := 4 + rng.IntN(4)
		if n*d%2 == 1 {
			n++
		}
		g, err := graph.RandomRegularConnected(n, d, rng)
		if err != nil {
			return true
		}
		for _, p := range []Protocol{Push, PushPull} {
			res, err := Run(g, graph.Vertex(rng.IntN(n)), xrand.New(seed+3), Config{Protocol: p})
			if err != nil || !res.Completed || res.Time <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
