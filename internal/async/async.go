// Package async implements the asynchronous variant of rumor spreading
// discussed in the paper's related work (Section 2): every node is equipped
// with an independent unit-rate Poisson clock and performs one push or
// push-pull exchange at each tick. Sauerwald [41] shows asynchronous push
// matches synchronous push on regular graphs, and Giakkoupis, Nazari &
// Woelfel [27] give tight sync-vs-async relations for push-pull; the
// experiment harness checks the regular-graph correspondence empirically.
//
// The simulation is discrete-event: a binary heap of pending activations,
// exponential inter-arrival times, instantaneous exchanges. Broadcast time
// is reported in continuous time units (one unit = one expected activation
// per node), directly comparable to synchronous rounds.
package async

import (
	"container/heap"
	"fmt"
	"math"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Protocol selects the exchange rule performed at each activation.
type Protocol string

// Supported protocols.
const (
	Push     Protocol = "push"
	PushPull Protocol = "push-pull"
)

// Config configures an asynchronous run.
type Config struct {
	// Protocol selects push or push-pull.
	Protocol Protocol
	// MaxTime bounds the simulated clock; <= 0 means 4·n² time units.
	MaxTime float64
}

// Result reports one asynchronous run.
type Result struct {
	// Time is the continuous broadcast time (last informing activation).
	Time float64
	// Activations counts node activations until completion.
	Activations int64
	// Completed is false if MaxTime was reached first.
	Completed bool
}

// event is one pending node activation.
type event struct {
	at   float64
	node graph.Vertex
}

// eventHeap is a min-heap of activations ordered by time.
type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run simulates the asynchronous protocol on g from source src.
func Run(g *graph.Graph, src graph.Vertex, rng *xrand.RNG, cfg Config) (Result, error) {
	n := g.N()
	if src < 0 || int(src) >= n {
		return Result{}, fmt.Errorf("async: source %d out of range", src)
	}
	if g.M() == 0 {
		return Result{}, fmt.Errorf("async: graph has no edges")
	}
	switch cfg.Protocol {
	case Push, PushPull:
	default:
		return Result{}, fmt.Errorf("async: unknown protocol %q", cfg.Protocol)
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = 4 * float64(n) * float64(n)
	}

	informed := bitset.New(n)
	informed.Set(int(src))
	count := 1

	// Initial activation per node: Exp(1) from time zero.
	h := make(eventHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, event{at: expSample(rng), node: graph.Vertex(v)})
	}
	heap.Init(&h)

	var res Result
	for count < n {
		ev := heap.Pop(&h).(event)
		if ev.at > maxTime {
			res.Time = maxTime
			return res, nil
		}
		res.Activations++
		u := ev.node
		nb := g.Neighbors(u)
		v := nb[rng.IntN(len(nb))]
		iu, iv := informed.Test(int(u)), informed.Test(int(v))
		switch {
		case iu && !iv:
			// push direction: both protocols transmit u -> v.
			informed.Set(int(v))
			count++
			res.Time = ev.at
		case !iu && iv && cfg.Protocol == PushPull:
			// pull direction: only push-pull retrieves v -> u.
			informed.Set(int(u))
			count++
			res.Time = ev.at
		}
		heap.Push(&h, event{at: ev.at + expSample(rng), node: u})
	}
	res.Completed = true
	return res, nil
}

// expSample draws Exp(1) by inversion.
func expSample(rng *xrand.RNG) float64 {
	return -math.Log(1 - rng.Float64())
}
