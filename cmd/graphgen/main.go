// Command graphgen generates graphs from the paper's families, exports them
// in the repository's text edge-list format, and prints structural
// statistics for imported or generated graphs.
//
// Usage:
//
//	graphgen -spec doublestar:512 -o doublestar.g      # generate & export
//	graphgen -spec randreg:1024,14 -seed 7 -stats      # generate & describe
//	graphgen -in doublestar.g -stats                   # import & describe
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		spec     = fs.String("spec", "", "graph spec to generate (e.g. star:100)")
		in       = fs.String("in", "", "read a graph from this file instead of generating")
		out      = fs.String("o", "", "write the graph to this file")
		seed     = fs.Uint64("seed", 1, "seed for random families")
		stats    = fs.Bool("stats", false, "print structural statistics")
		validate = fs.Bool("validate", false, "run full structural validation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	switch {
	case *in != "" && *spec != "":
		return fmt.Errorf("-in and -spec are mutually exclusive")
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Decode(f)
		if err != nil {
			return fmt.Errorf("decoding %s: %w", *in, err)
		}
	case *spec != "":
		g, err = graph.FromSpec(*spec, xrand.New(*seed))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -spec or -in is required")
	}

	if *validate {
		if err := g.Validate(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "validation: ok")
	}
	if *stats {
		printStats(stdout, g)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (n=%d, m=%d)\n", *out, g.N(), g.M())
	}
	if !*stats && *out == "" && !*validate {
		printStats(stdout, g)
	}
	return nil
}

func printStats(w io.Writer, g *graph.Graph) {
	fmt.Fprintf(w, "name       %s\n", g.Name())
	fmt.Fprintf(w, "vertices   %d\n", g.N())
	fmt.Fprintf(w, "edges      %d\n", g.M())
	reg, d := g.IsRegular()
	if reg {
		fmt.Fprintf(w, "degree     %d-regular\n", d)
	} else {
		fmt.Fprintf(w, "degree     min=%d avg=%.2f max=%d\n", g.MinDegree(), g.AvgDegree(), g.MaxDegree())
	}
	fmt.Fprintf(w, "connected  %v\n", graph.IsConnected(g))
	fmt.Fprintf(w, "bipartite  %v\n", graph.IsBipartite(g))
	if g.N() <= 4096 {
		fmt.Fprintf(w, "diameter   %d\n", graph.Diameter(g))
	} else {
		fmt.Fprintf(w, "diameter   >= %d (double-sweep estimate)\n", graph.DiameterEstimate(g))
	}
	if names := g.LandmarkNames(); len(names) > 0 {
		fmt.Fprintf(w, "landmarks  ")
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			v, _ := g.Landmark(n)
			fmt.Fprintf(w, "%s=%d", n, v)
		}
		fmt.Fprintln(w)
	}
}
