package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", "doublestar:8", "-stats", "-validate"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"validation: ok", "vertices   18", "edges      17", "bipartite  true", "diameter   3", "centerA=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")

	var out strings.Builder
	if err := run([]string{"-spec", "ringcliques:3,5", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("no write confirmation:\n%s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"-in", path, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vertices   15") {
		t.Errorf("import stats wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "6-regular") {
		t.Errorf("regularity lost in round trip:\n%s", out.String())
	}
}

func TestDefaultPrintsStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", "star:4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vertices   5") {
		t.Errorf("default run did not print stats:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // neither -spec nor -in
		{"-spec", "x:1"},                     // unknown family
		{"-in", "/nonexistent/p"},            // missing file
		{"-spec", "star:4", "-in", "/tmp/x"}, // mutually exclusive
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
