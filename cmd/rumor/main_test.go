package main

import (
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-graph", "star:32", "-protocol", "visitx", "-trials", "3", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"star(32)", "visitx", "completed  3/3", "rounds", "messages"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []string{"push", "push-pull", "visitx", "meetx", "hybrid"} {
		var out strings.Builder
		err := run([]string{"-graph", "complete:16", "-protocol", p, "-trials", "2"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !strings.Contains(out.String(), "completed  2/2") {
			t.Errorf("%s: incomplete trials:\n%s", p, out.String())
		}
	}
}

func TestRunHistoryFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-graph", "complete:8", "-protocol", "push", "-trials", "1", "-history"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "history (trial 0): 1 ") {
		t.Errorf("history line missing:\n%s", out.String())
	}
}

func TestRunAgentFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "hypercube:5", "-protocol", "visitx",
		"-alpha", "2", "-churn", "0.01", "-lazy", "on", "-trials", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed  2/2") {
		t.Errorf("agent flags broke the run:\n%s", out.String())
	}
}

func TestRunCutoffWarning(t *testing.T) {
	var out strings.Builder
	// Push on a big cycle cannot finish in 3 rounds.
	err := run([]string{"-graph", "cycle:64", "-protocol", "push", "-trials", "2", "-maxrounds", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning: 2 trials hit the round cutoff") {
		t.Errorf("cutoff warning missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "bogus:1"},
		{"-graph", "star:8", "-protocol", "nope"},
		{"-graph", "star:8", "-source", "99"},
		{"-graph", "star:8", "-lazy", "sometimes"},
		{"-graph", "star:8", "-trials", "0"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDefaultSourcePrefersLemmaLandmarks(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "doublestar:8", "-protocol", "visitx", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	// The preference order picks leafA (vertex 2) on the double star.
	if !strings.Contains(out.String(), "source=2") {
		t.Errorf("default source not the leafA landmark:\n%s", out.String())
	}
}
