// Command rumor runs one rumor-spreading protocol on one graph and prints
// broadcast-time statistics.
//
// Usage:
//
//	rumor -graph star:1024 -protocol visitx -trials 10 -seed 1
//	rumor -graph randreg:2048,16 -protocol push -source 0
//	rumor -graph doublestar:512 -protocol push-pull -trials 20 -history
//
// Protocols: push, push-pull, visitx, meetx, hybrid.
// Graph families: see -help output (the FromSpec grammar).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rumor/internal/experiment"
	"rumor/internal/graph"
	"rumor/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rumor:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumor", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "star:256", "graph spec, e.g. star:1024, randreg:2048,16")
		protocol  = fs.String("protocol", "push", "push | push-pull | visitx | meetx | hybrid")
		source    = fs.Int("source", -1, "source vertex (-1 = first landmark or 0)")
		trials    = fs.Int("trials", 10, "independent trials")
		seed      = fs.Uint64("seed", 1, "master seed")
		alpha     = fs.Float64("alpha", 1, "agent density |A| = alpha*n (agent protocols)")
		agentsN   = fs.Int("agents", 0, "explicit agent count (overrides -alpha)")
		churn     = fs.Float64("churn", 0, "per-round agent replacement probability")
		lazy      = fs.String("lazy", "auto", "agent walk laziness: auto | on | off")
		maxRounds = fs.Int("maxrounds", 0, "round cutoff (0 = default n^2 bound)")
		history   = fs.Bool("history", false, "print per-round informed counts of trial 0")
		dataDir   = fs.String("data-dir", "", "content-addressed graph store directory; giant deterministic graphs build once and mmap on reuse")
		spill     = fs.Int64("graph-spill", 256<<20, "spill graphs whose CSR is at least this many bytes into <data-dir>/graphs — deterministic families by canonical spec, random families by (spec, sampler seed, sampler version) (0 = never; needs -data-dir)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: rumor [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nGraph families:\n  %s\n", strings.Join(graph.SpecFamilies(), "\n  "))
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir != "" {
		if err := experiment.ConfigureGraphStorage(filepath.Join(*dataDir, "graphs"), *spill); err != nil {
			return err
		}
	}

	// The CLI is a thin shell over the same spec-driven entry point the
	// serving layer uses: one RunSpec, normalized, built, run.
	spec := experiment.RunSpec{
		Graph:     *graphSpec,
		Protocol:  experiment.Proto(*protocol),
		Source:    *source,
		Trials:    *trials,
		MaxRounds: *maxRounds,
		Seed:      *seed,
		Alpha:     *alpha,
		Agents:    *agentsN,
		Churn:     *churn,
		Lazy:      *lazy,
	}
	spec, err := spec.Normalize()
	if err != nil {
		return err
	}
	g, src, err := spec.Build()
	if err != nil {
		return err
	}
	results, err := spec.RunOn(g, src, nil)
	if err != nil {
		return err
	}

	rounds := make([]float64, 0, len(results))
	msgs := make([]float64, 0, len(results))
	completed := 0
	for _, r := range results {
		if r.Completed {
			completed++
			rounds = append(rounds, float64(r.Rounds))
			msgs = append(msgs, float64(r.Messages))
		}
	}
	reg, d := g.IsRegular()
	fmt.Fprintf(out, "graph      %s  (n=%d, m=%d", g.Name(), g.N(), g.M())
	if reg {
		fmt.Fprintf(out, ", %d-regular", d)
	}
	fmt.Fprintf(out, ", bipartite=%v)\n", graph.IsBipartite(g))
	fmt.Fprintf(out, "protocol   %s  source=%d  trials=%d  seed=%d\n", *protocol, src, *trials, *seed)
	fmt.Fprintf(out, "completed  %d/%d\n", completed, len(results))
	if completed > 0 {
		s := stats.Summarize(rounds)
		fmt.Fprintf(out, "rounds     mean=%.1f ±%.1f (95%% CI)  median=%.0f  min=%.0f  max=%.0f  p90=%.0f\n",
			s.Mean, s.CI95, s.Median, s.Min, s.Max, s.P90)
		ms := stats.Summarize(msgs)
		fmt.Fprintf(out, "messages   mean=%.0f (%.1f per round)\n", ms.Mean, ms.Mean/s.Mean)
	}
	if *history && len(results) > 0 {
		fmt.Fprintf(out, "history (trial 0): ")
		for t, c := range results[0].History {
			if t > 0 {
				fmt.Fprint(out, " ")
			}
			fmt.Fprintf(out, "%d", c)
		}
		fmt.Fprintln(out)
	}
	if completed < len(results) {
		fmt.Fprintf(out, "warning: %d trials hit the round cutoff\n", len(results)-completed)
	}
	return nil
}
