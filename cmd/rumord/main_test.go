package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndDrain boots the daemon on a random port, exercises one
// deterministic request twice (fresh + cache, identical bytes), and
// drains it through the stop channel.
func TestServeAndDrain(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"},
			func(a net.Addr) { addrCh <- a }, stop)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	post := func() []byte {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"graph":"star:32","protocol":"push","trials":3,"seed":4}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return b
	}
	fresh := post()
	cached := post()
	if string(fresh) != string(cached) {
		t.Fatal("fresh and cached responses differ")
	}
	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain timed out")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}
