package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeAndDrain boots the daemon on a random port, exercises one
// deterministic request twice (fresh + cache, identical bytes), and
// drains it through the stop channel.
func TestServeAndDrain(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"},
			func(a net.Addr) { addrCh <- a }, stop)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	post := func() []byte {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"graph":"star:32","protocol":"push","trials":3,"seed":4}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return b
	}
	fresh := post()
	cached := post()
	if string(fresh) != string(cached) {
		t.Fatal("fresh and cached responses differ")
	}
	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain timed out")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestListenConflictFailsCleanly: a second daemon on an already-bound
// address must return an orderly error (main turns it into a logged
// non-zero exit) — never panic, and never hang.
func TestListenConflictFailsCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errCh <- fmt.Errorf("run panicked: %v", r)
			}
		}()
		errCh <- run([]string{"-addr", ln.Addr().String()}, nil, nil)
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("bound-address conflict not reported")
		}
		if !strings.Contains(err.Error(), "listen") {
			t.Fatalf("conflict error does not name the listen step: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conflicting daemon neither exited nor errored")
	}
}

// TestPortFile: with -addr :0 and -port-file, the daemon publishes its
// real bound address so a supervisor can spawn backends on ephemeral
// ports.
func TestPortFile(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "rumord.addr")
	addrCh := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-port-file", portFile},
			func(a net.Addr) { addrCh <- a }, stop)
	}()
	var bound string
	select {
	case a := <-addrCh:
		bound = a.String()
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	written, err := os.ReadFile(portFile)
	if err != nil {
		t.Fatalf("port file: %v", err)
	}
	if got := strings.TrimSpace(string(written)); got != bound {
		t.Fatalf("port file has %q, server bound %q", got, bound)
	}
	resp, err := http.Get("http://" + bound + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on published address: %d", resp.StatusCode)
	}
	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain timed out")
	}
}

// TestDataDirReplayAcrossRestart: with -data-dir, a result evicted from
// the memory LRU survives a full daemon restart and replays from disk
// byte-identically.
func TestDataDirReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-cache", "1", "-shards", "1", "-data-dir", dir}
	boot := func() (string, chan struct{}, chan error) {
		addrCh := make(chan net.Addr, 1)
		stop := make(chan struct{})
		errCh := make(chan error, 1)
		go func() {
			errCh <- run(args, func(a net.Addr) { addrCh <- a }, stop)
		}()
		select {
		case a := <-addrCh:
			return "http://" + a.String(), stop, errCh
		case err := <-errCh:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server did not start")
		}
		panic("unreachable")
	}
	post := func(base, spec string) (string, []byte) {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("X-Rumord-Source"), b
	}
	drain := func(stop chan struct{}, errCh chan error) {
		close(stop)
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("drain timed out")
		}
	}

	spec := `{"graph":"star:48","protocol":"meetx","trials":3,"seed":6}`
	base, stop, errCh := boot()
	_, fresh := post(base, spec)
	// Evict the entry (cache capacity 1, one shard) so it spills.
	post(base, `{"graph":"cycle:16","protocol":"push","trials":1,"seed":1}`)
	drain(stop, errCh)

	base, stop, errCh = boot()
	src, replayed := post(base, spec)
	if src != "disk" {
		t.Fatalf("after restart: source %q, want disk", src)
	}
	if string(replayed) != string(fresh) {
		t.Fatal("disk replay differs from the original response")
	}
	drain(stop, errCh)
}
