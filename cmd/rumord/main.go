// Command rumord serves the simulator as a long-running HTTP service:
// canonicalized simulation requests with singleflight deduplication,
// LRU-cached deterministic results, and NDJSON streaming of per-trial
// results (package serve).
//
// Usage:
//
//	rumord -addr :8356
//	curl -s localhost:8356/v1/run -d '{"graph":"star:1024","protocol":"visitx","trials":10,"seed":1}'
//	curl -s localhost:8356/v1/sweep -d '{"defaults":{"trials":10},"graphs":["star:256","star:512"],"protocols":["push","visitx"]}'
//	curl -s localhost:8356/v1/jobs/<id>/stream
//
// SIGINT/SIGTERM drain: intake stops (503), queued and running jobs
// finish and deliver their results, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (served only on -pprof-addr)
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rumor/internal/experiment"
	"rumor/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rumord:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a shutdown signal (or stop, the
// tests' signal stand-in) triggers the drain. ready, when non-nil,
// receives the bound address once listening.
func run(args []string, ready func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8356", "listen address (use 127.0.0.1:0 with -port-file for an ephemeral port)")
		portFile  = fs.String("port-file", "", "write the bound address here once listening, so supervisors spawning on :0 can learn the port")
		workers   = fs.Int("workers", 0, "concurrent simulations (0 = half the processors)")
		queue     = fs.Int("queue", 0, "max queued jobs (0 = default 256)")
		cache     = fs.Int("cache", 0, "completed-result LRU entries (0 = default 512)")
		shards    = fs.Int("shards", 0, "job-table/cache shards (0 = default 16)")
		dataDir   = fs.String("data-dir", "", "spill evicted results to content-addressed files here; replayed byte-identically across restarts (empty = memory only)")
		spill     = fs.Int64("graph-spill", 256<<20, "spill graphs whose CSR is at least this many bytes to <data-dir>/graphs and serve them mmap-backed — deterministic families by canonical spec, random families by (spec, sampler seed, sampler version) (0 = never spill; needs -data-dir)")
		drain     = fs.Duration("drain", 30*time.Second, "max time to drain jobs on shutdown")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled; never on the serving port)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir != "" {
		// Graph spill shares the result spill's data dir: graphs live in
		// a graphs/ subdirectory the result scan ignores, so one -data-dir
		// captures everything a restart replays.
		if err := experiment.ConfigureGraphStorage(filepath.Join(*dataDir, "graphs"), *spill); err != nil {
			return err
		}
	}
	s, err := serve.New(serve.Options{
		Workers: *workers, QueueSize: *queue, CacheSize: *cache,
		Shards: *shards, DataDir: *dataDir,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		log.Printf("rumord: data dir %s: %d spilled results resident", *dataDir, s.SpillLen())
	}
	if *pprofAddr != "" {
		// Profiling binds its own listener so /debug/pprof/* is reachable
		// only where the operator pointed it, never on the serving port.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *pprofAddr, err)
		}
		defer pln.Close()
		log.Printf("rumord: pprof on http://%s/debug/pprof/", pln.Addr())
		go http.Serve(pln, nil) // DefaultServeMux carries the pprof routes
	}
	// A listen failure — most commonly the port is already bound by
	// another process — is an orderly, logged, non-zero exit: supervisors
	// (cmd/soak) key restart decisions off it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	if *portFile != "" {
		// The bound address (with the real port when -addr ended in :0) is
		// published to a file rather than parsed out of logs.
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write port file: %w", err)
		}
	}
	if ready != nil {
		ready(ln.Addr())
	}
	log.Printf("rumord: listening on %s", ln.Addr())
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		return err
	case v := <-sig:
		log.Printf("rumord: %v: draining", v)
	case <-stop:
		log.Printf("rumord: stop requested: draining")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain order matters: the service stops intake first (new submissions
	// get 503 while HTTP still serves), jobs finish and hand results to
	// their waiting handlers, then the HTTP server waits for those
	// handlers to flush.
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain jobs: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain http: %w", err)
	}
	log.Printf("rumord: drained")
	return nil
}
