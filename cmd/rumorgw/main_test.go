package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeAndShutdown boots the gateway against one fake backend,
// proxies a request through it, reads the port file, and stops it.
func TestServeAndShutdown(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"proxied":true}` + "\n"))
	}))
	defer backend.Close()
	portFile := filepath.Join(t.TempDir(), "gw.addr")

	addrCh := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-backends", strings.TrimPrefix(backend.URL, "http://"),
			"-port-file", portFile,
			"-check-interval", "50ms",
		}, func(a net.Addr) { addrCh <- a }, stop)
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("gateway exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not start")
	}

	written, err := os.ReadFile(portFile)
	if err != nil {
		t.Fatalf("port file: %v", err)
	}
	if got := strings.TrimSpace(string(written)); "http://"+got != base {
		t.Fatalf("port file %q, listening on %q", got, base)
	}

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"graph":"star:8","protocol":"push","trials":1,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != `{"proxied":true}`+"\n" {
		t.Fatalf("proxied response: %d %q", resp.StatusCode, body)
	}

	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Backends []struct {
			Healthy bool `json:"healthy"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || len(health.Backends) != 1 {
		t.Fatalf("healthz: %+v", health)
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown timed out")
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-bogus"}, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(nil, nil, nil); err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Fatalf("missing -backends accepted: %v", err)
	}
}
