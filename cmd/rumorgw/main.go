// Command rumorgw is the fault-tolerant gateway in front of N rumord
// backends (package gateway): consistent-hash routing by job content
// hash, active health checking with ejection and re-admission, bounded
// retries with exponential backoff + jitter failing over around the
// ring, NDJSON stream resume-by-rerun, and load-shedding 503s when all
// ring nodes for a key are down.
//
// Usage:
//
//	rumorgw -addr :8360 -backends 127.0.0.1:8356,127.0.0.1:8357,127.0.0.1:8358
//	curl -s localhost:8360/v1/run -d '{"graph":"star:1024","protocol":"visitx","trials":10,"seed":1}'
//	curl -s localhost:8360/v1/healthz   # gateway + per-backend health
//
// The gateway is stateless apart from health counters and a bounded
// request-memory LRU; any number of rumorgw processes can front the same
// backend set and route identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (served only on -pprof-addr)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rumor/internal/admission"
	"rumor/internal/gateway"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rumorgw:", err)
		os.Exit(1)
	}
}

// run starts the gateway and blocks until a shutdown signal (or stop,
// the tests' stand-in). ready, when non-nil, receives the bound address.
func run(args []string, ready func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("rumorgw", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8360", "listen address")
		backends  = fs.String("backends", "", "comma-separated rumord addresses (required)")
		portFile  = fs.String("port-file", "", "write the bound address here once listening (for process supervisors)")
		replicas  = fs.Int("replicas", 0, "virtual ring nodes per backend (0 = default 64)")
		attempts  = fs.Int("attempts", 0, "max attempts per proxied request (0 = default 3)")
		perTry    = fs.Duration("per-try-timeout", 0, "deadline per buffered proxy attempt (0 = default 15s)")
		backoff   = fs.Duration("backoff", 0, "base retry backoff, doubled per retry with jitter (0 = default 50ms)")
		backMax   = fs.Duration("backoff-max", 0, "retry backoff cap (0 = default 2s)")
		check     = fs.Duration("check-interval", 500*time.Millisecond, "readyz health-check interval")
		eject     = fs.Int("eject-after", 0, "consecutive failed checks before ejection (0 = default 2)")
		readmit   = fs.Int("readmit-after", 0, "consecutive passed checks before re-admission (0 = default 2)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled; never on the serving port)")

		quotasPath  = fs.String("quotas", "", "per-client quota file (JSON: default quota + per-API-key overrides)")
		maxInFlight = fs.Int("max-inflight", 0, "submissions dispatched concurrently across all clients (0 = default 256)")
		admQueue    = fs.Int("admission-queue", 0, "submissions held in the fair queue before shedding (0 = default 1024)")
		clientRate  = fs.Float64("client-rate", 0, "default per-client sustained submissions/sec (0 = unlimited)")
		clientBurst = fs.Int("client-burst", 0, "default per-client burst (0 = ceil(rate) when a rate is set)")
		clientInFl  = fs.Int("client-inflight", 0, "default per-client concurrent submissions (0 = unlimited)")
		clientQueue = fs.Int("client-queue", 0, "default per-client held submissions (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if strings.TrimSpace(*backends) == "" {
		return fmt.Errorf("-backends is required (comma-separated rumord addresses)")
	}
	// CLI defaults seed the quota baseline; a -quotas file's own default
	// overrides any field it sets (0 in the file inherits the CLI value).
	quotas := admission.Config{Default: admission.Quota{
		RatePerSec:  *clientRate,
		Burst:       *clientBurst,
		MaxInFlight: *clientInFl,
		MaxQueue:    *clientQueue,
	}}
	if *quotasPath != "" {
		fileCfg, err := admission.LoadConfig(*quotasPath)
		if err != nil {
			return err
		}
		quotas = admission.Config{
			Default: admission.MergeDefaults(quotas.Default, fileCfg.Default),
			Clients: fileCfg.Clients,
		}
	}
	g, err := gateway.New(gateway.Options{
		Backends:             strings.Split(*backends, ","),
		Replicas:             *replicas,
		Attempts:             *attempts,
		PerTryTimeout:        *perTry,
		BackoffBase:          *backoff,
		BackoffMax:           *backMax,
		CheckInterval:        *check,
		EjectAfter:           *eject,
		ReadmitAfter:         *readmit,
		Quotas:               quotas,
		AdmissionMaxInFlight: *maxInFlight,
		AdmissionMaxQueue:    *admQueue,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	if *pprofAddr != "" {
		// Profiling binds its own listener so /debug/pprof/* is reachable
		// only where the operator pointed it, never on the serving port.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen %s: %w", *pprofAddr, err)
		}
		defer pln.Close()
		log.Printf("rumorgw: pprof on http://%s/debug/pprof/", pln.Addr())
		go http.Serve(pln, nil) // DefaultServeMux carries the pprof routes
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write port file: %w", err)
		}
	}
	if ready != nil {
		ready(ln.Addr())
	}
	log.Printf("rumorgw: listening on %s, fronting %s", ln.Addr(), *backends)
	httpSrv := &http.Server{Handler: g.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		return err
	case v := <-sig:
		log.Printf("rumorgw: %v: shutting down", v)
	case <-stop:
		log.Printf("rumorgw: stop requested: shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain http: %w", err)
	}
	log.Printf("rumorgw: drained")
	return nil
}
