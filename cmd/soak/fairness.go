package main

// Fairness storm: after the kill-driven storm, the harness turns one
// API key into a greedy flooder (many workers, a tight quota, barely
// backing off) and runs a handful of polite keyed clients against the
// same gateway. The gateway runs under a -quotas file the harness wrote
// at boot, so the assertions exercise the real admission path end to
// end: the flooder is throttled with honest Retry-After hints, the
// polite clients lose nothing and stay byte-identical to the local
// reference, per-class admission counters account for what each side
// saw, and the conservation law holds on every mid-run scrape (checked
// by the monitor).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rumor/internal/admission"
	"rumor/internal/experiment"
)

const greedyKey = "greedy"

func politeKey(i int) string { return "polite-" + strconv.Itoa(i) }

// writeQuotasFile writes the quota config the soak gateway boots under:
// the default class (the keyless kill-storm clients) stays unlimited,
// the greedy key is rate- and inflight-capped at weight 1, and each
// polite key runs unlimited at weight 3 — so under saturation the DRR
// queue serves polite submissions three times as often.
func writeQuotasFile(dir string, polite int) (string, error) {
	cfg := admission.Config{
		Clients: map[string]admission.Quota{
			greedyKey: {RatePerSec: 40, Burst: 20, MaxInFlight: 16, MaxQueue: 64, Weight: 1},
		},
	}
	for i := 0; i < polite; i++ {
		cfg.Clients[politeKey(i)] = admission.Quota{Weight: 3}
	}
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "quotas.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// fairnessResult is the fairness section of the soak report.
type fairnessResult struct {
	Duration        string                      `json:"duration"`
	GreedyWorkers   int                         `json:"greedyWorkers"`
	GreedyCompleted int64                       `json:"greedyCompleted"`
	GreedyThrottled int64                       `json:"greedyThrottled429s"`
	GreedyShed      int64                       `json:"greedyShed503s"`
	BadRetryAfter   int64                       `json:"badRetryAfterHints"`
	PoliteCompleted map[string]int64            `json:"politeCompleted"`
	PoliteDropped   int64                       `json:"politeDropped"`
	ClassMetrics    map[string]map[string]int64 `json:"classMetrics,omitempty"`
}

// runFairness drives the multi-client fairness storm and returns its
// report section plus the invariants it asserts (folded into the exit
// verdict by the caller).
func (h *harness) runFairness(mon *monitor) (*fairnessResult, []invariant) {
	cfg := h.cfg
	fmt.Printf("soak: fairness storm: %d greedy workers vs %d polite clients for %v\n",
		cfg.greedyWorkers, cfg.polite, cfg.fairness)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.fairness)
	defer cancel()

	var (
		wg         sync.WaitGroup
		seq        atomic.Int64 // unique greedy seeds: every flood spec is fresh work
		greedyDone atomic.Int64
		greedy429  atomic.Int64
		greedyShed atomic.Int64
		badHint    atomic.Int64
		politeDrop atomic.Int64
	)
	politeDone := make([]atomic.Int64, cfg.polite)
	for w := 0; w < cfg.greedyWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.greedyLoop(ctx, &seq, &greedyDone, &greedy429, &greedyShed, &badHint)
		}()
	}
	for i := 0; i < cfg.polite; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.politeLoop(ctx, i, &politeDone[i], &politeDrop, &badHint)
		}(i)
	}
	wg.Wait()

	res := &fairnessResult{
		Duration:        cfg.fairness.String(),
		GreedyWorkers:   cfg.greedyWorkers,
		GreedyCompleted: greedyDone.Load(),
		GreedyThrottled: greedy429.Load(),
		GreedyShed:      greedyShed.Load(),
		BadRetryAfter:   badHint.Load(),
		PoliteDropped:   politeDrop.Load(),
		PoliteCompleted: map[string]int64{},
	}
	for i := range politeDone {
		res.PoliteCompleted[politeKey(i)] = politeDone[i].Load()
	}

	var invs []invariant
	add := func(name string, ok bool, format string, args ...any) {
		invs = append(invs, invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	add("fairness-polite-zero-drops", res.PoliteDropped == 0,
		"polite requests dropped=%d (every polite submission must complete within the %v grace)",
		res.PoliteDropped, cfg.grace)
	minP, maxP := int64(-1), int64(0)
	for _, n := range res.PoliteCompleted {
		if minP < 0 || n < minP {
			minP = n
		}
		if n > maxP {
			maxP = n
		}
	}
	add("fairness-polite-progress", minP >= 3,
		"slowest polite client completed %d runs under the flood (want >= 3): %v", minP, res.PoliteCompleted)
	add("fairness-polite-proportional", maxP > 0 && float64(minP)/float64(maxP) >= 0.25,
		"polite throughput min/max = %d/%d (equal-weight clients must stay within 4x)", minP, maxP)
	add("fairness-honest-retry-after", res.BadRetryAfter == 0,
		"%d throttle/shed responses carried a missing or unparseable Retry-After", res.BadRetryAfter)

	// Per-class admission counters from a fresh gateway scrape: the
	// flooder must have been throttled by its own quota, the fair queue
	// must actually have held work, and every client-observed completion
	// must be covered by its class's accepted counter.
	sc, err := mon.scrapeOne(h.gwURL + "/metrics")
	if err != nil {
		add("fairness-class-metrics", false, "final gateway scrape failed: %v", err)
		return res, invs
	}
	classVal := func(name, class string) int64 {
		v, _ := sc.Value(name, map[string]string{"class": class})
		return int64(v)
	}
	res.ClassMetrics = map[string]map[string]int64{}
	for _, class := range append([]string{admission.DefaultClass, greedyKey}, politeKeys(cfg.polite)...) {
		res.ClassMetrics[class] = map[string]int64{
			"accepted":  classVal("rumorgw_admission_accepted_total", class),
			"throttled": classVal("rumorgw_admission_throttled_total", class),
			"shed":      classVal("rumorgw_admission_shed_total", class),
			"queued":    classVal("rumorgw_admission_queued_total", class),
		}
	}
	add("fairness-greedy-throttled",
		res.GreedyThrottled > 0 && res.ClassMetrics[greedyKey]["throttled"] > 0,
		"greedy saw %d 429s, admission counted throttled{greedy}=%d (both must be > 0)",
		res.GreedyThrottled, res.ClassMetrics[greedyKey]["throttled"])
	add("fairness-queueing-observed", int64(sc.Sum("rumorgw_admission_queued_total")) > 0,
		"fair-queue holds across all classes = %d (the flood must saturate dispatch at least once)",
		int64(sc.Sum("rumorgw_admission_queued_total")))
	var uncovered []string
	for i := range politeDone {
		if acc, n := res.ClassMetrics[politeKey(i)]["accepted"], politeDone[i].Load(); acc < n {
			uncovered = append(uncovered, fmt.Sprintf("%s accepted=%d completed=%d", politeKey(i), acc, n))
		}
		if thr := res.ClassMetrics[politeKey(i)]["throttled"]; thr != 0 {
			uncovered = append(uncovered, fmt.Sprintf("%s throttled=%d (unlimited quota)", politeKey(i), thr))
		}
	}
	if acc := res.ClassMetrics[greedyKey]["accepted"]; acc < res.GreedyCompleted {
		uncovered = append(uncovered, fmt.Sprintf("greedy accepted=%d completed=%d", acc, res.GreedyCompleted))
	}
	add("fairness-class-metrics", len(uncovered) == 0,
		"per-class accepted covers observed completions, polite never throttled %v", uncovered)
	return res, invs
}

func politeKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = politeKey(i)
	}
	return out
}

// postKey is post with a client API key attached.
func (h *harness) postKey(path, key string, body []byte) (status int, hdr http.Header, respBody []byte, err error) {
	reqCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, "POST", h.gwURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(admission.KeyHeader, key)
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}

// checkHint counts throttle/shed responses whose Retry-After is missing
// or not a positive integer — the "honest hints" half of the contract.
func checkHint(hdr http.Header, bad *atomic.Int64) {
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		bad.Add(1)
	}
}

// greedyLoop floods /v1/run under the greedy key with unique seeds
// (every submission is fresh work, so dedup cannot defuse the flood),
// barely backing off on throttles — the adversary the quota exists for.
func (h *harness) greedyLoop(ctx context.Context, seq, done, throttled, shed, badHint *atomic.Int64) {
	for ctx.Err() == nil {
		spec := experiment.DefaultRunSpec()
		spec.Graph = "star:96"
		spec.Protocol = experiment.ProtoPush
		spec.Trials = 1
		spec.Seed = uint64(7_000_000 + seq.Add(1))
		body, err := json.Marshal(spec)
		if err != nil {
			return
		}
		status, hdr, _, err := h.postKey("/v1/run", greedyKey, body)
		switch {
		case err != nil:
			sleepCtx(ctx, 50*time.Millisecond)
		case status == http.StatusOK:
			done.Add(1)
		case status == http.StatusTooManyRequests:
			throttled.Add(1)
			checkHint(hdr, badHint)
			sleepCtx(ctx, 25*time.Millisecond) // deliberately ignores the hint
		case status == http.StatusServiceUnavailable:
			shed.Add(1)
			checkHint(hdr, badHint)
			sleepCtx(ctx, 50*time.Millisecond)
		case status == http.StatusBadGateway:
			sleepCtx(ctx, 50*time.Millisecond)
		default:
			h.failf("fairness greedy: unexpected status %d", status)
			return
		}
	}
}

// politeLoop is one well-behaved keyed client: sequential submissions
// from the precomputed fairness pool, honoring Retry-After, each
// response checked byte-for-byte against the local reference. A request
// that cannot complete within the grace budget is a drop — the
// starvation signal the weights exist to prevent.
func (h *harness) politeLoop(ctx context.Context, idx int, done, dropped, badHint *atomic.Int64) {
	key := politeKey(idx)
	for k := 0; ctx.Err() == nil; k++ {
		rs := &h.w.fair[(idx*2+k)%len(h.w.fair)]
		budget := time.Now().Add(h.cfg.grace)
		for {
			status, hdr, body, err := h.postKey("/v1/run", key, rs.body)
			if err == nil && status == http.StatusOK {
				if !bytes.Equal(body, rs.ref.Body) {
					h.failf("fairness polite %s: bytes diverged from reference (%d vs %d bytes)",
						key, len(body), len(rs.ref.Body))
				} else {
					done.Add(1)
				}
				break
			}
			if err == nil {
				switch status {
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					checkHint(hdr, badHint)
				case http.StatusBadGateway:
				default:
					h.failf("fairness polite %s: unexpected status %d: %s", key, status, truncate(body))
					return
				}
			}
			if time.Now().After(budget) {
				dropped.Add(1)
				break
			}
			wait := retryAfterOf(hdr)
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
			time.Sleep(wait)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
