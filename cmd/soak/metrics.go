package main

// Metrics-side soak assertions: while the storm runs, a monitor
// goroutine scrapes GET /metrics from the gateway and every backend on
// an interval (exercising the endpoints under kill-driven load and
// proving they parse); after the storm, a final scrape feeds the exit
// invariants — counter conservation, agreement with /v1/healthz,
// kill-coverage of ejection/failover counters, zero error counters, and
// populated per-protocol latency histograms — and everything is written
// to a SOAK_METRICS.json report.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rumor/internal/experiment"
	"rumor/internal/metrics"
)

// monitor scrapes /metrics across the tier. Mid-run scrape failures
// against a killed backend are expected and skipped; anything that
// answers must answer 200 with parseable exposition text, so a non-200
// or a parse error is recorded as a violation.
type monitor struct {
	client *http.Client
	gwURL  string
	slots  []*backendSlot

	mu       sync.Mutex
	gwOK     int64
	beOK     map[string]int64 // backend addr -> successful scrapes
	gw       *metrics.Scrape  // latest gateway parse
	be       map[string]*metrics.Scrape
	badText  []string // capped: non-200s and parse failures
	badCount int64

	// admission conservation, checked on EVERY successful gateway scrape:
	// submitted == accepted + throttled + shed + canceled + queue
	// occupancy, exact, because the gateway renders all admission series
	// from one snapshot per exposition.
	admChecked  int64
	admBadCount int64
	admBad      []string // capped violation samples
}

func newMonitor(client *http.Client, gwURL string, slots []*backendSlot) *monitor {
	return &monitor{
		client: client, gwURL: gwURL, slots: slots,
		beOK: map[string]int64{}, be: map[string]*metrics.Scrape{},
	}
}

// loop scrapes every target each interval until ctx expires — the
// "during the run" half of the assertion, proving /metrics stays
// servable while backends are being SIGKILLed around it.
func (m *monitor) loop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.scrapeAll()
		}
	}
}

func (m *monitor) scrapeAll() {
	m.scrapeGateway()
	for _, s := range m.slots {
		m.scrapeBackend(s.addr)
	}
}

func (m *monitor) scrapeGateway() {
	sc, err := m.scrapeOne(m.gwURL + "/metrics")
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.noteBadLocked("gateway", err)
		return
	}
	m.gwOK++
	m.gw = sc
	m.admChecked++
	if detail, ok := admissionConserved(sc); !ok {
		m.admBadCount++
		if len(m.admBad) < 10 {
			m.admBad = append(m.admBad, detail)
		}
	}
}

// admissionConserved checks the admission conservation law on one
// gateway scrape. Counters sum across classes; the queue-occupancy gauge
// closes the books on submissions still held.
func admissionConserved(sc *metrics.Scrape) (string, bool) {
	sub := int64(sc.Sum("rumorgw_admission_submitted_total"))
	acc := int64(sc.Sum("rumorgw_admission_accepted_total"))
	thr := int64(sc.Sum("rumorgw_admission_throttled_total"))
	shed := int64(sc.Sum("rumorgw_admission_shed_total"))
	can := int64(sc.Sum("rumorgw_admission_canceled_total"))
	occ := int64(sc.Sum("rumorgw_admission_queue_occupancy"))
	if sub != acc+thr+shed+can+occ {
		return fmt.Sprintf("submitted=%d != accepted=%d + throttled=%d + shed=%d + canceled=%d + queue=%d",
			sub, acc, thr, shed, can, occ), false
	}
	return "", true
}

func (m *monitor) scrapeBackend(addr string) {
	sc, err := m.scrapeOne("http://" + addr + "/metrics")
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		// A refused connection is a killed backend, not a metrics bug.
		if !isConnErr(err) {
			m.noteBadLocked(addr, err)
		}
		return
	}
	m.beOK[addr]++
	m.be[addr] = sc
}

func (m *monitor) noteBadLocked(target string, err error) {
	m.badCount++
	if len(m.badText) < 10 {
		m.badText = append(m.badText, fmt.Sprintf("%s: %v", target, err))
	}
}

func isConnErr(err error) bool {
	s := err.Error()
	return strings.Contains(s, "connection refused") ||
		strings.Contains(s, "connection reset") ||
		strings.Contains(s, "EOF")
}

// scrapeOne fetches and parses one exposition payload.
func (m *monitor) scrapeOne(url string) (*metrics.Scrape, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// invariant is one exit assertion with its outcome, both printed and
// persisted in the report.
type invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// protocol label values the per-protocol histogram assertions cover.
func protoLabels() []string {
	ps := experiment.Protos()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = string(p)
	}
	return out
}

// checkInvariants runs the post-storm metric assertions over the final
// scrapes. killed marks backend addresses that lost their counters to a
// SIGKILL at least once — counter-vs-observed checks skip those, since
// a restart legally resets every process-local counter.
func (m *monitor) checkInvariants(gwStats gwSnapshot, gwErr error, killsDone int, killed map[string]bool, observed map[string]map[string]int64) []invariant {
	m.mu.Lock()
	defer m.mu.Unlock()
	var invs []invariant
	add := func(name string, ok bool, format string, args ...any) {
		invs = append(invs, invariant{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	// Every target must have answered /metrics at least once while the
	// storm ran, and nothing it ever answered may have been malformed.
	allScraped := m.gwOK > 0
	var scrapeDetail []string
	scrapeDetail = append(scrapeDetail, fmt.Sprintf("gateway=%d", m.gwOK))
	for _, s := range m.slots {
		if m.beOK[s.addr] == 0 {
			allScraped = false
		}
		scrapeDetail = append(scrapeDetail, fmt.Sprintf("%s=%d", s.addr, m.beOK[s.addr]))
	}
	add("scrapes-during-run", allScraped, "successful scrapes: %s", strings.Join(scrapeDetail, " "))
	add("scrapes-well-formed", m.badCount == 0, "%d malformed or non-200 scrapes %v", m.badCount, m.badText)

	// Admission conservation must have held on every gateway scrape taken
	// while traffic (and kills) were in flight — not just the final one.
	add("admission-conservation-per-scrape", m.admChecked > 0 && m.admBadCount == 0,
		"checked on %d scrapes, %d violations %v", m.admChecked, m.admBadCount, m.admBad)

	// Final scrapes exist for everything (the killer restarts every
	// victim, so the whole tier is up once traffic stops).
	finalOK := m.gw != nil
	for _, s := range m.slots {
		if m.be[s.addr] == nil {
			finalOK = false
		}
	}
	add("final-scrape-complete", finalOK, "gateway=%v backends=%d/%d", m.gw != nil, len(m.be), len(m.slots))
	if !finalOK {
		return invs // everything below reads the final scrapes
	}

	// Gateway /metrics and /v1/healthz are two views of the same atomics;
	// with traffic stopped they must agree exactly.
	if gwErr != nil {
		add("gateway-metrics-match-healthz", false, "healthz unavailable: %v", gwErr)
	} else {
		want := map[string]int64{
			"rumorgw_requests_total":       gwStats.Requests,
			"rumorgw_retries_total":        gwStats.Retries,
			"rumorgw_failovers_total":      gwStats.Failovers,
			"rumorgw_shed_total":           gwStats.Shed,
			"rumorgw_exhausted_total":      gwStats.Exhausted,
			"rumorgw_stream_resumes_total": gwStats.StreamResumes,
			"rumorgw_stream_reruns_total":  gwStats.StreamReruns,
		}
		var diffs []string
		names := make([]string, 0, len(want))
		for n := range want {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if got := int64(m.gw.Sum(n)); got != want[n] {
				diffs = append(diffs, fmt.Sprintf("%s=%d healthz=%d", n, got, want[n]))
			}
		}
		add("gateway-metrics-match-healthz", len(diffs) == 0, "diffs: %v", diffs)
	}

	// Conservation: every submission a backend ever accepted or refused
	// is attributed to exactly one source or one rejection reason. This
	// is internal consistency, so it holds on restarted backends too.
	var broken []string
	for _, s := range m.slots {
		sc := m.be[s.addr]
		req := int64(sc.Sum("rumord_requests_total"))
		src := int64(sc.Sum("rumord_requests_by_source_total"))
		rej := int64(sc.Sum("rumord_submit_rejections_total"))
		if req != src+rej {
			broken = append(broken, fmt.Sprintf("%s: requests=%d sources=%d rejections=%d", s.addr, req, src, rej))
		}
	}
	add("backend-conservation", len(broken) == 0, "requests_total == by_source + rejections on every backend %v", broken)

	// Cache-source consistency: each 200 the client saw with
	// X-Rumorgw-Backend=B and X-Rumord-Source=s incremented B's source
	// counter, so observed[B][s] <= counter (the counter also absorbs
	// retries whose responses never reached the client). Only meaningful
	// for backends that kept their counters all run.
	var srcDiffs []string
	checked := 0
	for addr, bySrc := range observed {
		if killed[addr] {
			continue
		}
		sc := m.be[addr]
		if sc == nil {
			continue
		}
		checked++
		for src, n := range bySrc {
			counter, _ := sc.Value("rumord_requests_by_source_total", map[string]string{"source": src})
			if int64(counter) < n {
				srcDiffs = append(srcDiffs, fmt.Sprintf("%s source=%s counter=%d observed=%d", addr, src, int64(counter), n))
			}
		}
	}
	add("source-headers-vs-counters", len(srcDiffs) == 0,
		"observed X-Rumord-Source counts <= counters on %d never-killed backends %v", checked, srcDiffs)

	// Each SIGKILL must surface in the gateway's failure machinery: the
	// checker ejects the dead backend, and in-flight or freshly-routed
	// requests fail over around the ring.
	ejections := int64(m.gw.Sum("rumorgw_backend_ejections_total"))
	add("ejections-cover-kills", ejections >= int64(killsDone), "ejections=%d kills=%d", ejections, killsDone)
	failovers := int64(m.gw.Sum("rumorgw_failovers_total"))
	add("failovers-cover-kills", failovers >= int64(killsDone), "failovers=%d kills=%d", failovers, killsDone)

	// Nothing in the tier may have hit an internal error path.
	var errCounters []string
	for _, s := range m.slots {
		sc := m.be[s.addr]
		for _, n := range []string{"rumord_internal_errors_total", "rumord_failures_total", "rumord_spill_errors_total"} {
			if v := sc.Sum(n); v != 0 {
				errCounters = append(errCounters, fmt.Sprintf("%s %s=%d", s.addr, n, int64(v)))
			}
		}
	}
	add("zero-error-counters", len(errCounters) == 0, "nonzero: %v", errCounters)

	// Per-protocol simulation-latency histograms: structurally valid on
	// every backend for every protocol (pre-registered children), and
	// populated somewhere in the tier for every protocol the workload
	// exercises (all of them).
	var histBroken []string
	protoCount := map[string]int64{}
	for _, s := range m.slots {
		sc := m.be[s.addr]
		for _, p := range protoLabels() {
			c, err := sc.CheckHistogram("rumord_simulation_seconds", map[string]string{"protocol": p})
			if err != nil {
				histBroken = append(histBroken, fmt.Sprintf("%s: %v", s.addr, err))
				continue
			}
			protoCount[p] += c
		}
	}
	var unpopulated []string
	for _, p := range protoLabels() {
		if protoCount[p] == 0 {
			unpopulated = append(unpopulated, p)
		}
	}
	add("protocol-histograms-valid", len(histBroken) == 0, "CheckHistogram on every backend x protocol %v", histBroken)
	add("protocol-histograms-populated", len(unpopulated) == 0, "per-protocol sim counts %v; empty: %v", fmtCounts(protoCount), unpopulated)

	// Gateway route latency histograms: valid for every route, populated
	// for the routes the storm drives hard.
	var routeBroken []string
	for _, route := range []string{"run", "sweep", "job", "stream"} {
		if _, err := m.gw.CheckHistogram("rumorgw_request_seconds", map[string]string{"route": route}); err != nil {
			routeBroken = append(routeBroken, err.Error())
		}
	}
	runCount, _ := m.gw.CheckHistogram("rumorgw_request_seconds", map[string]string{"route": "run"})
	add("gateway-route-histograms", len(routeBroken) == 0 && runCount > 0,
		"4 routes valid %v; route=run count=%d", routeBroken, runCount)

	return invs
}

func fmtCounts(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// ---- report -------------------------------------------------------------

type backendReport struct {
	Killed         bool             `json:"killed"`
	Requests       int64            `json:"requests"`
	BySource       map[string]int64 `json:"bySource"`
	Rejections     map[string]int64 `json:"rejections"`
	Simulations    int64            `json:"simulations"`
	Failures       int64            `json:"failures"`
	InternalErrors int64            `json:"internalErrors"`
	SimCounts      map[string]int64 `json:"simCounts"` // histogram _count per protocol
	Scrapes        int64            `json:"scrapes"`
}

type soakReport struct {
	Backends       int                         `json:"backends"`
	Clients        int                         `json:"clients"`
	Duration       string                      `json:"duration"`
	Kills          int                         `json:"kills"`
	KilledAddrs    []string                    `json:"killedAddrs"`
	GatewayScrapes int64                       `json:"gatewayScrapes"`
	Gateway        map[string]int64            `json:"gateway"`
	BackendState   map[string]*backendReport   `json:"backendMetrics"`
	Observed       map[string]map[string]int64 `json:"observedSources"`
	Fairness       *fairnessResult             `json:"fairness,omitempty"`
	Invariants     []invariant                 `json:"invariants"`
	Pass           bool                        `json:"pass"`
}

// buildReport assembles the persisted SOAK_METRICS.json document from
// the final scrapes plus the invariant outcomes.
func (m *monitor) buildReport(cfg config, killsDone int, killedAddrs []string, observed map[string]map[string]int64, invs []invariant, fair *fairnessResult) *soakReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	killed := map[string]bool{}
	for _, a := range killedAddrs {
		killed[a] = true
	}
	rep := &soakReport{
		Backends: cfg.backends, Clients: cfg.clients, Duration: cfg.duration.String(),
		Kills: killsDone, KilledAddrs: killedAddrs,
		GatewayScrapes: m.gwOK,
		Gateway:        map[string]int64{},
		BackendState:   map[string]*backendReport{},
		Observed:       observed,
		Fairness:       fair,
		Invariants:     invs,
		Pass:           true,
	}
	for _, inv := range invs {
		if !inv.OK {
			rep.Pass = false
		}
	}
	if m.gw != nil {
		for _, n := range []string{
			"rumorgw_requests_total", "rumorgw_retries_total", "rumorgw_failovers_total",
			"rumorgw_shed_total", "rumorgw_exhausted_total",
			"rumorgw_stream_resumes_total", "rumorgw_stream_reruns_total",
			"rumorgw_backend_ejections_total", "rumorgw_backend_readmissions_total",
			"rumorgw_ring_backends", "rumorgw_healthy_backends",
			"rumorgw_admission_submitted_total", "rumorgw_admission_accepted_total",
			"rumorgw_admission_throttled_total", "rumorgw_admission_shed_total",
			"rumorgw_admission_canceled_total", "rumorgw_admission_queued_total",
		} {
			rep.Gateway[n] = int64(m.gw.Sum(n))
		}
	}
	for _, s := range m.slots {
		br := &backendReport{
			Killed:     killed[s.addr],
			BySource:   map[string]int64{},
			Rejections: map[string]int64{},
			SimCounts:  map[string]int64{},
			Scrapes:    m.beOK[s.addr],
		}
		rep.BackendState[s.addr] = br
		sc := m.be[s.addr]
		if sc == nil {
			continue
		}
		br.Requests = int64(sc.Sum("rumord_requests_total"))
		br.Simulations = int64(sc.Sum("rumord_simulations_total"))
		br.Failures = int64(sc.Sum("rumord_failures_total"))
		br.InternalErrors = int64(sc.Sum("rumord_internal_errors_total"))
		for _, src := range sc.LabelValues("rumord_requests_by_source_total", "source") {
			v, _ := sc.Value("rumord_requests_by_source_total", map[string]string{"source": src})
			br.BySource[src] = int64(v)
		}
		for _, reason := range sc.LabelValues("rumord_submit_rejections_total", "reason") {
			v, _ := sc.Value("rumord_submit_rejections_total", map[string]string{"reason": reason})
			br.Rejections[reason] = int64(v)
		}
		for _, p := range protoLabels() {
			if c, err := sc.CheckHistogram("rumord_simulation_seconds", map[string]string{"protocol": p}); err == nil {
				br.SimCounts[p] = c
			}
		}
	}
	return rep
}

func writeReport(path string, rep *soakReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
