package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSoakSmoke runs a miniature soak — real gateway and backend
// processes, real SIGKILL, byte-checked traffic — small enough for the
// unit-test tier. The CI soak-smoke job runs the full-size version.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds binaries; skipped in -short")
	}
	cfg := defaultConfig()
	cfg.backends = 2
	cfg.clients = 3
	cfg.kills = 1
	cfg.duration = 6 * time.Second
	cfg.down = 300 * time.Millisecond
	cfg.grace = 15 * time.Second
	cfg.metricsOut = filepath.Join(t.TempDir(), "SOAK_METRICS.json")
	if err := run(cfg); err != nil {
		t.Fatalf("soak: %v", err)
	}
	// The metrics report must exist, parse, and record a passing run
	// with at least one mid-run scrape per target.
	b, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatalf("metrics report: %v", err)
	}
	var rep soakReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("metrics report parse: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("metrics report records failed invariants: %+v", rep.Invariants)
	}
	if rep.GatewayScrapes == 0 {
		t.Fatal("no mid-run gateway scrapes recorded")
	}
	if len(rep.BackendState) != cfg.backends {
		t.Fatalf("report covers %d backends, want %d", len(rep.BackendState), cfg.backends)
	}
}

// TestWorkloadReferences: every precomputed workload entry carries a
// non-empty reference with a terminal frame — the oracle the storm
// verifies against must itself be well-formed.
func TestWorkloadReferences(t *testing.T) {
	w, err := buildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.runs) == 0 || len(w.hot) == 0 || len(w.sweeps) == 0 {
		t.Fatalf("workload empty: %d runs, %d hot, %d sweeps", len(w.runs), len(w.hot), len(w.sweeps))
	}
	for _, rs := range w.runs {
		if rs.ref.ID == "" || len(rs.ref.Body) == 0 || len(rs.ref.Final) == 0 {
			t.Fatalf("run reference incomplete: %+v", rs.ref.ID)
		}
	}
	for _, sw := range w.sweeps {
		if sw.ref.ID == "" || len(sw.ref.Body) == 0 || len(sw.ref.Final) == 0 {
			t.Fatalf("sweep reference incomplete: %+v", sw.ref.ID)
		}
	}
}
