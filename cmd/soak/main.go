// Command soak is the kill-driven soak harness for the gateway tier: it
// spawns a rumorgw gateway and N rumord backends as real OS processes,
// drives sustained concurrent mixed traffic (runs, duplicate specs,
// sweeps, streams, job polls) through the gateway, SIGKILLs and restarts
// random backends on a schedule, and asserts the two properties the tier
// promises:
//
//   - zero dropped requests: every request completes (the harness
//     honors load-shed Retry-After and retries transient failures, so a
//     "drop" means the tier failed to serve a request within its grace
//     budget);
//   - zero wrong bytes: every /v1/run and /v1/sweep body and every
//     NDJSON stream is byte-identical to a locally computed
//     single-process reference (serve.ComputeReference) — retries,
//     failovers, and mid-stream backend deaths included.
//
// It exits non-zero on any drop, mismatch, or missed kill, and prints a
// summary with the gateway's retry/failover/shed counters.
//
// Usage:
//
//	soak -backends 3 -kills 2 -duration 30s -clients 6
//	soak -rumord-bin ./rumord -gw-bin ./rumorgw   # prebuilt (e.g. -race) binaries
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rumor/internal/experiment"
	"rumor/internal/serve"
)

func main() {
	cfg := defaultConfig()
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.IntVar(&cfg.backends, "backends", cfg.backends, "rumord backend count")
	fs.IntVar(&cfg.clients, "clients", cfg.clients, "concurrent traffic clients")
	fs.IntVar(&cfg.kills, "kills", cfg.kills, "scheduled backend SIGKILL+restarts")
	fs.DurationVar(&cfg.duration, "duration", cfg.duration, "traffic duration")
	fs.DurationVar(&cfg.down, "down", cfg.down, "how long a killed backend stays down before restart")
	fs.DurationVar(&cfg.grace, "grace", cfg.grace, "per-request retry budget before it counts as dropped")
	fs.StringVar(&cfg.rumordBin, "rumord-bin", "", "prebuilt rumord binary (empty = go build one)")
	fs.StringVar(&cfg.gwBin, "gw-bin", "", "prebuilt rumorgw binary (empty = go build one)")
	fs.Uint64Var(&cfg.seed, "seed", cfg.seed, "traffic-shape RNG seed")
	fs.StringVar(&cfg.metricsOut, "metrics-out", cfg.metricsOut, "write the per-run metrics report here (empty = skip)")
	fs.DurationVar(&cfg.scrape, "scrape-interval", cfg.scrape, "mid-run /metrics scrape interval")
	fs.DurationVar(&cfg.fairness, "fairness", cfg.fairness, "post-storm fairness phase duration (0 = skip)")
	fs.IntVar(&cfg.greedyWorkers, "greedy-workers", cfg.greedyWorkers, "flooding workers on the greedy key during the fairness phase")
	fs.IntVar(&cfg.polite, "polite", cfg.polite, "well-behaved keyed clients during the fairness phase")
	fs.BoolVar(&cfg.verbose, "v", false, "pipe process logs to stderr and log every retry")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
}

type config struct {
	backends   int
	clients    int
	kills      int
	duration   time.Duration
	down       time.Duration
	grace      time.Duration
	scrape     time.Duration
	rumordBin  string
	gwBin      string
	seed       uint64
	metricsOut string
	verbose    bool

	// fairness phase: a greedy keyed flooder vs polite keyed clients
	// against the quota file the harness writes at boot.
	fairness      time.Duration
	greedyWorkers int
	polite        int
}

func defaultConfig() config {
	return config{
		backends:   3,
		clients:    6,
		kills:      2,
		duration:   30 * time.Second,
		down:       750 * time.Millisecond,
		grace:      20 * time.Second,
		scrape:     500 * time.Millisecond,
		seed:       1,
		metricsOut: "SOAK_METRICS.json",

		fairness:      8 * time.Second,
		greedyWorkers: 12,
		polite:        3,
	}
}

// ---- workload ----------------------------------------------------------

// workload is the precomputed traffic: specs plus their byte-exact
// references, so verification during the storm is a bytes.Equal.
type workload struct {
	// runs is the general spec pool; hot is the subset duplicate traffic
	// hammers concurrently to exercise cross-client dedup.
	runs []refSpec
	hot  []refSpec
	// sweeps are fixed sweep requests with assembled references.
	sweeps []refSweep
	// fair is the polite clients' pool for the fairness phase: seeds
	// disjoint from both the storm specs and the greedy flood, so the
	// phase does fresh work instead of replaying the storm's cache.
	fair []refSpec
}

type refSpec struct {
	body []byte
	ref  serve.Reference
}

type refSweep struct {
	body []byte
	ref  serve.Reference
}

// buildWorkload precomputes every reference locally — the oracle all
// proxied bytes are checked against.
func buildWorkload() (*workload, error) {
	w := &workload{}
	graphs := []string{"star:64", "star:96", "cycle:40", "cycle:64", "complete:24", "path:48"}
	protos := experiment.Protos()
	for i, g := range graphs {
		for j := 0; j < 2; j++ {
			spec := experiment.DefaultRunSpec()
			spec.Graph = g
			spec.Protocol = protos[(i+j)%len(protos)]
			spec.Trials = 2 + (i+j)%3
			spec.Seed = uint64(1 + i*2 + j)
			spec.History = i%3 == 0
			rs, err := makeRefSpec(spec)
			if err != nil {
				return nil, err
			}
			w.runs = append(w.runs, rs)
		}
	}
	w.hot = w.runs[:3]
	for _, sw := range []experiment.Sweep{
		{
			Defaults:  withTrialsSeed(2, 5),
			Graphs:    []string{"star:32", "cycle:24"},
			Protocols: []experiment.Proto{experiment.ProtoPush, experiment.ProtoVisitX},
		},
		{
			Defaults:  withTrialsSeed(2, 1),
			Graphs:    []string{"star:48"},
			Protocols: []experiment.Proto{experiment.ProtoMeetX, experiment.ProtoHybrid},
			Seeds:     []uint64{1, 2},
		},
	} {
		body, err := json.Marshal(sw)
		if err != nil {
			return nil, err
		}
		points, err := sw.Expand()
		if err != nil {
			return nil, err
		}
		ref, err := serve.ComputeSweepReference(points)
		if err != nil {
			return nil, err
		}
		w.sweeps = append(w.sweeps, refSweep{body: body, ref: ref})
	}
	for i := 0; i < 6; i++ {
		spec := experiment.DefaultRunSpec()
		spec.Graph = graphs[i%len(graphs)]
		spec.Protocol = protos[i%len(protos)]
		spec.Trials = 2
		spec.Seed = uint64(900_000 + i)
		rs, err := makeRefSpec(spec)
		if err != nil {
			return nil, err
		}
		w.fair = append(w.fair, rs)
	}
	return w, nil
}

func withTrialsSeed(trials int, seed uint64) experiment.RunSpec {
	s := experiment.DefaultRunSpec()
	s.Trials = trials
	s.Seed = seed
	return s
}

func makeRefSpec(spec experiment.RunSpec) (refSpec, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return refSpec{}, err
	}
	ref, err := serve.ComputeReference(spec)
	if err != nil {
		return refSpec{}, err
	}
	return refSpec{body: body, ref: ref}, nil
}

// ---- process supervision -----------------------------------------------

// proc is one spawned process (backend or gateway).
type proc struct {
	name string
	addr string
	cmd  *exec.Cmd
}

type supervisor struct {
	cfg     config
	dir     string // temp dir for binaries and port files
	mu      sync.Mutex
	procs   map[string]*proc
	verbose bool
}

func (sv *supervisor) logf(format string, args ...any) {
	if sv.verbose {
		fmt.Fprintf(os.Stderr, "soak: "+format+"\n", args...)
	}
}

// spawn starts bin with args plus a fresh -port-file, waits for the
// published address, and registers the process under name.
func (sv *supervisor) spawn(name, bin string, args ...string) (*proc, error) {
	portFile := filepath.Join(sv.dir, name+".addr")
	os.Remove(portFile)
	cmd := exec.Command(bin, append(args, "-port-file", portFile)...)
	if sv.verbose {
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	addr, err := awaitPortFile(portFile, cmd)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &proc{name: name, addr: addr, cmd: cmd}
	sv.mu.Lock()
	sv.procs[name] = p
	sv.mu.Unlock()
	sv.logf("%s up on %s (pid %d)", name, addr, cmd.Process.Pid)
	return p, nil
}

// awaitPortFile waits for the spawned process to publish its bound
// address, failing fast if the process exits first (e.g. a bind
// conflict, which rumord reports with a non-zero exit instead of a
// panic).
func awaitPortFile(path string, cmd *exec.Cmd) (string, error) {
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("exited before publishing its address: %v", err)
		default:
		}
		if b, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				// The Wait goroutine stays armed for the process's whole life:
				// it reaps the PID whenever a kill (scheduled or teardown)
				// lands, so no zombies accumulate.
				return addr, nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return "", fmt.Errorf("no address published within 15s")
}

// killAll tears every process down (TERM, then KILL after a grace).
func (sv *supervisor) killAll() {
	sv.mu.Lock()
	procs := make([]*proc, 0, len(sv.procs))
	for _, p := range sv.procs {
		procs = append(procs, p)
	}
	sv.procs = map[string]*proc{}
	sv.mu.Unlock()
	for _, p := range procs {
		p.cmd.Process.Signal(os.Interrupt)
	}
	done := time.Now().Add(5 * time.Second)
	for _, p := range procs {
		for time.Now().Before(done) && alive(p.cmd) {
			time.Sleep(50 * time.Millisecond)
		}
		p.cmd.Process.Kill()
	}
}

func alive(cmd *exec.Cmd) bool {
	return cmd.Process != nil && cmd.Process.Signal(syscall.Signal(0)) == nil
}

// ---- harness ------------------------------------------------------------

type counters struct {
	total, runs, dups, sweeps, streams, polls atomic.Int64
	retriesClient, pollMisses, truncations    atomic.Int64
	dropped, mismatches                       atomic.Int64
}

type harness struct {
	cfg      config
	sv       *supervisor
	w        *workload
	client   *http.Client
	gwURL    string
	backends []*backendSlot
	ctr      counters
	deadline time.Time

	mismatchMu sync.Mutex
	mismatch   []string

	recentMu sync.Mutex
	recent   []string // completed job IDs for poll traffic

	// obs counts the X-Rumord-Source values the clients actually saw,
	// attributed to the backend X-Rumorgw-Backend names — the ground
	// truth the metrics invariants compare backend counters against.
	obsMu sync.Mutex
	obs   map[string]map[string]int64 // backend addr -> source -> 200s seen
}

// noteSource records one successful run/sweep response's provenance
// headers. Responses missing either header (none, in practice) are
// skipped rather than misattributed.
func (h *harness) noteSource(hdr http.Header) {
	src, be := hdr.Get("X-Rumord-Source"), hdr.Get("X-Rumorgw-Backend")
	if src == "" || be == "" {
		return
	}
	h.obsMu.Lock()
	if h.obs[be] == nil {
		h.obs[be] = map[string]int64{}
	}
	h.obs[be][src]++
	h.obsMu.Unlock()
}

func (h *harness) observedSources() map[string]map[string]int64 {
	h.obsMu.Lock()
	defer h.obsMu.Unlock()
	out := make(map[string]map[string]int64, len(h.obs))
	for be, m := range h.obs {
		cp := make(map[string]int64, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[be] = cp
	}
	return out
}

// backendSlot pins one backend's identity: the address survives
// kill/restart cycles so the ring keyspace never moves.
type backendSlot struct {
	index int
	addr  string
}

func (h *harness) failf(format string, args ...any) {
	h.ctr.mismatches.Add(1)
	h.mismatchMu.Lock()
	if len(h.mismatch) < 10 {
		h.mismatch = append(h.mismatch, fmt.Sprintf(format, args...))
	}
	h.mismatchMu.Unlock()
}

func run(cfg config) error {
	if cfg.backends < 1 || cfg.clients < 1 {
		return fmt.Errorf("need at least one backend and one client")
	}
	dir, err := os.MkdirTemp("", "rumor-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rumordBin, gwBin := cfg.rumordBin, cfg.gwBin
	if rumordBin == "" || gwBin == "" {
		fmt.Println("soak: building rumord + rumorgw")
		if rumordBin == "" {
			if rumordBin, err = buildBinary(dir, "rumord", "rumor/cmd/rumord"); err != nil {
				return err
			}
		}
		if gwBin == "" {
			if gwBin, err = buildBinary(dir, "rumorgw", "rumor/cmd/rumorgw"); err != nil {
				return err
			}
		}
	}

	w, err := buildWorkload()
	if err != nil {
		return fmt.Errorf("precompute references: %w", err)
	}

	sv := &supervisor{cfg: cfg, dir: dir, procs: map[string]*proc{}, verbose: cfg.verbose}
	defer sv.killAll()

	h := &harness{
		cfg: cfg, sv: sv, w: w,
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},
		obs:    map[string]map[string]int64{},
	}

	// Backends on ephemeral ports; the published address becomes the
	// slot's permanent identity (restarts re-bind it).
	for i := 0; i < cfg.backends; i++ {
		p, err := sv.spawn(backendName(i), rumordBin,
			"-addr", "127.0.0.1:0", "-workers", "2", "-cache", "256")
		if err != nil {
			return err
		}
		h.backends = append(h.backends, &backendSlot{index: i, addr: p.addr})
	}
	addrs := make([]string, len(h.backends))
	for i, b := range h.backends {
		addrs[i] = b.addr
	}
	// The gateway admits at most backends*workers concurrent submissions
	// (matching real dispatch capacity) under the harness's quota file —
	// storm clients are keyless and unlimited, the fairness keys are not.
	gwArgs := []string{
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(addrs, ","),
		"-check-interval", "150ms",
		"-attempts", "4",
		"-backoff", "25ms",
		"-per-try-timeout", "10s",
		"-max-inflight", strconv.Itoa(cfg.backends * 2),
	}
	if cfg.fairness > 0 {
		quotasPath, err := writeQuotasFile(dir, cfg.polite)
		if err != nil {
			return fmt.Errorf("write quotas file: %w", err)
		}
		gwArgs = append(gwArgs, "-quotas", quotasPath)
	}
	gw, err := sv.spawn("rumorgw", gwBin, gwArgs...)
	if err != nil {
		return err
	}
	h.gwURL = "http://" + gw.addr
	if err := h.awaitGateway(); err != nil {
		return err
	}

	fmt.Printf("soak: %d backends behind %s, %d clients, %v, %d scheduled kills\n",
		cfg.backends, gw.addr, cfg.clients, cfg.duration, cfg.kills)

	start := time.Now()
	h.deadline = start.Add(cfg.duration)
	ctx, cancel := context.WithDeadline(context.Background(), h.deadline)
	defer cancel()

	// Metrics monitor: scrapes /metrics across the tier for the whole
	// storm AND the fairness phase, so the endpoints (and the per-scrape
	// admission conservation law) are exercised under load, not just after.
	mon := newMonitor(h.client, h.gwURL, h.backends)
	monCtx, monCancel := context.WithCancel(context.Background())
	defer monCancel()
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		mon.loop(monCtx, cfg.scrape)
	}()

	killsDone, restartsDone, killErr := 0, 0, error(nil)
	var killedAddrs []string // written by the killer, read after wg.Wait
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // killer
		defer wg.Done()
		rng := rand.New(rand.NewPCG(cfg.seed, 0xdead))
		for k := 0; k < cfg.kills; k++ {
			at := start.Add(cfg.duration * time.Duration(k+1) / time.Duration(cfg.kills+1))
			if !sleepUntil(ctx, at) {
				return
			}
			victim := h.backends[rng.IntN(len(h.backends))]
			killedAddrs = append(killedAddrs, victim.addr)
			if err := h.killAndRestart(victim, rumordBin); err != nil {
				killErr = err
				return
			}
			killsDone++
			restartsDone++
		}
	}()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h.clientLoop(ctx, c)
		}(c)
	}
	wg.Wait()

	// Fairness phase: with the whole tier back up, the greedy flooder
	// and the polite keyed clients contend for the same admission slots.
	var fair *fairnessResult
	var fairInvs []invariant
	if killErr == nil && cfg.fairness > 0 && cfg.greedyWorkers > 0 && cfg.polite > 0 {
		fair, fairInvs = h.runFairness(mon)
	}
	monCancel()
	monWG.Wait()
	elapsed := time.Since(start)

	// Post-storm accounting: gateway counters, backend dedup sums, and
	// one final all-targets metrics scrape the exit invariants read.
	gwStats, gwErr := h.gatewayStats()
	collapsed := h.backendCollapse()
	mon.scrapeAll()
	killed := map[string]bool{}
	for _, a := range killedAddrs {
		killed[a] = true
	}
	invs := mon.checkInvariants(gwStats, gwErr, killsDone, killed, h.observedSources())
	invs = append(invs, fairInvs...)
	failedInvs := 0
	for _, inv := range invs {
		if !inv.OK {
			failedInvs++
		}
	}
	if cfg.metricsOut != "" {
		rep := mon.buildReport(cfg, killsDone, killedAddrs, h.observedSources(), invs, fair)
		if err := writeReport(cfg.metricsOut, rep); err != nil {
			return fmt.Errorf("write %s: %w", cfg.metricsOut, err)
		}
	}

	fmt.Printf("soak: done in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("requests: total=%d runs=%d dups=%d sweeps=%d streams=%d polls=%d\n",
		h.ctr.total.Load(), h.ctr.runs.Load(), h.ctr.dups.Load(),
		h.ctr.sweeps.Load(), h.ctr.streams.Load(), h.ctr.polls.Load())
	fmt.Printf("verdict: mismatches=%d dropped=%d (client retries=%d, stream truncations retried=%d, poll misses=%d)\n",
		h.ctr.mismatches.Load(), h.ctr.dropped.Load(),
		h.ctr.retriesClient.Load(), h.ctr.truncations.Load(), h.ctr.pollMisses.Load())
	if gwErr == nil {
		fmt.Printf("gateway: requests=%d retries=%d failovers=%d shed=%d exhausted=%d streamResumes=%d streamReruns=%d\n",
			gwStats.Requests, gwStats.Retries, gwStats.Failovers, gwStats.Shed,
			gwStats.Exhausted, gwStats.StreamResumes, gwStats.StreamReruns)
	} else {
		fmt.Printf("gateway: stats unavailable: %v\n", gwErr)
	}
	fmt.Printf("backends: kills=%d restarts=%d dedup+cache collapses (surviving counters)=%d\n",
		killsDone, restartsDone, collapsed)
	if fair != nil {
		fmt.Printf("fairness: greedy completed=%d throttled=%d shed=%d badHints=%d; polite completed=%v dropped=%d\n",
			fair.GreedyCompleted, fair.GreedyThrottled, fair.GreedyShed, fair.BadRetryAfter,
			fair.PoliteCompleted, fair.PoliteDropped)
	}
	fmt.Printf("metrics: %d invariants, %d failed", len(invs), failedInvs)
	if cfg.metricsOut != "" {
		fmt.Printf(" (report: %s)", cfg.metricsOut)
	}
	fmt.Println()
	for _, inv := range invs {
		if !inv.OK {
			fmt.Printf("metrics invariant FAILED: %s: %s\n", inv.Name, inv.Detail)
		} else if cfg.verbose {
			fmt.Printf("metrics invariant ok: %s: %s\n", inv.Name, inv.Detail)
		}
	}
	for _, m := range h.mismatch {
		fmt.Printf("mismatch: %s\n", m)
	}

	switch {
	case killErr != nil:
		return fmt.Errorf("kill/restart schedule failed: %w", killErr)
	case killsDone < cfg.kills:
		return fmt.Errorf("only %d of %d scheduled kills executed", killsDone, cfg.kills)
	case h.ctr.mismatches.Load() > 0:
		return fmt.Errorf("%d responses diverged from the local reference bytes", h.ctr.mismatches.Load())
	case h.ctr.dropped.Load() > 0:
		return fmt.Errorf("%d requests dropped (not served within the %v grace budget)", h.ctr.dropped.Load(), cfg.grace)
	case h.ctr.total.Load() == 0:
		return fmt.Errorf("no requests completed")
	case h.ctr.dups.Load() > 20 && collapsed == 0:
		return fmt.Errorf("duplicate specs never collapsed (dedup+cache hits = 0 across backends)")
	case failedInvs > 0:
		return fmt.Errorf("%d of %d metrics invariants failed", failedInvs, len(invs))
	}
	fmt.Println("soak: PASS — zero drops, every byte identical to the single-process reference, all metrics invariants hold")
	return nil
}

func backendName(i int) string { return "rumord-" + strconv.Itoa(i) }

func buildBinary(dir, name, pkg string) (string, error) {
	out := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build %s: %w", pkg, err)
	}
	return out, nil
}

func sleepUntil(ctx context.Context, at time.Time) bool {
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (h *harness) awaitGateway() error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(h.gwURL + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("gateway not healthy within 15s")
}

// killAndRestart SIGKILLs a backend mid-traffic and restarts it on the
// same address, so the ring keyspace it owns comes back warm-addressed.
func (h *harness) killAndRestart(slot *backendSlot, bin string) error {
	name := backendName(slot.index)
	h.sv.mu.Lock()
	p := h.sv.procs[name]
	h.sv.mu.Unlock()
	if p == nil {
		return fmt.Errorf("backend %s not running", name)
	}
	h.sv.logf("KILL %s (%s)", name, slot.addr)
	p.cmd.Process.Kill()
	// The PID is reaped by the waiter awaitPortFile armed; give the OS a
	// beat to release the socket before the restart attempts.
	time.Sleep(h.cfg.down)
	var lastErr error
	for try := 0; try < 20; try++ {
		np, err := h.sv.spawn(name, bin,
			"-addr", slot.addr, "-workers", "2", "-cache", "256")
		if err == nil {
			if np.addr != slot.addr {
				return fmt.Errorf("backend %s restarted on %s, expected %s", name, np.addr, slot.addr)
			}
			h.sv.logf("RESTART %s", name)
			return nil
		}
		lastErr = err
		time.Sleep(250 * time.Millisecond)
	}
	return fmt.Errorf("restart %s: %w", name, lastErr)
}

// gwSnapshot is the gateway's /v1/healthz counter block — compared
// field-for-field against the gateway's own /metrics at exit.
type gwSnapshot struct {
	Requests      int64 `json:"requests"`
	Retries       int64 `json:"retries"`
	Failovers     int64 `json:"failovers"`
	Shed          int64 `json:"shed"`
	Exhausted     int64 `json:"exhausted"`
	StreamResumes int64 `json:"streamResumes"`
	StreamReruns  int64 `json:"streamReruns"`
}

// gatewayStats fetches the gateway's counter snapshot.
func (h *harness) gatewayStats() (stats gwSnapshot, err error) {
	resp, err := h.client.Get(h.gwURL + "/v1/healthz")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	var body struct {
		Stats json.RawMessage `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return stats, err
	}
	err = json.Unmarshal(body.Stats, &stats)
	return stats, err
}

// backendCollapse sums dedup+cache hits across the currently-running
// backends: proof that identical in-flight and repeated specs collapsed
// instead of simulating N times. (Counters die with killed processes,
// so this is a lower bound.)
func (h *harness) backendCollapse() int64 {
	var sum int64
	for _, b := range h.backends {
		resp, err := h.client.Get("http://" + b.addr + "/v1/healthz")
		if err != nil {
			continue
		}
		var body struct {
			Stats struct {
				DedupHits int64 `json:"dedupHits"`
				CacheHits int64 `json:"cacheHits"`
				SpillHits int64 `json:"spillHits"`
			} `json:"stats"`
		}
		if json.NewDecoder(resp.Body).Decode(&body) == nil {
			sum += body.Stats.DedupHits + body.Stats.CacheHits + body.Stats.SpillHits
		}
		resp.Body.Close()
	}
	return sum
}

// ---- traffic ------------------------------------------------------------

func (h *harness) clientLoop(ctx context.Context, id int) {
	rng := rand.New(rand.NewPCG(h.cfg.seed, uint64(id)+1))
	for ctx.Err() == nil {
		switch pick := rng.IntN(10); {
		case pick < 4:
			h.doRun(ctx, &h.w.runs[rng.IntN(len(h.w.runs))], &h.ctr.runs)
		case pick < 6:
			h.doRun(ctx, &h.w.hot[rng.IntN(len(h.w.hot))], &h.ctr.dups)
		case pick < 7:
			h.doSweep(ctx, &h.w.sweeps[rng.IntN(len(h.w.sweeps))])
		case pick < 9:
			h.doStream(ctx, &h.w.runs[rng.IntN(len(h.w.runs))])
		default:
			h.doPoll(ctx)
		}
	}
}

// retryLoop drives one logical request to completion: transient
// failures (connection errors, 429/502/503, truncated streams) are
// retried — honoring Retry-After on load-shed 503s — until success or
// the per-request grace budget runs out, which counts as a DROP. A
// non-nil verdict error from attempt is a hard failure (wrong bytes or
// an unexpected 4xx) and is never retried.
func (h *harness) retryLoop(ctx context.Context, kind string, attempt func(context.Context) (retryAfter time.Duration, done bool, hard error)) {
	budget := time.Now().Add(h.cfg.grace)
	for {
		retryAfter, done, hard := attempt(ctx)
		if hard != nil {
			h.failf("%s: %v", kind, hard)
			return
		}
		if done {
			h.ctr.total.Add(1)
			return
		}
		if ctx.Err() != nil && time.Now().After(h.deadline.Add(h.cfg.grace)) {
			h.ctr.dropped.Add(1)
			return
		}
		if time.Now().After(budget) {
			h.ctr.dropped.Add(1)
			return
		}
		h.ctr.retriesClient.Add(1)
		if retryAfter <= 0 {
			retryAfter = 100 * time.Millisecond
		}
		time.Sleep(retryAfter)
	}
}

// post issues one POST and classifies the outcome.
func (h *harness) post(ctx context.Context, path string, body []byte) (status int, hdr http.Header, respBody []byte, err error) {
	reqCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, "POST", h.gwURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}

func retryAfterOf(hdr http.Header) time.Duration {
	if s := hdr.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// doRun POSTs a spec and asserts the body is byte-identical to the
// local reference.
func (h *harness) doRun(ctx context.Context, rs *refSpec, ctr *atomic.Int64) {
	h.retryLoop(ctx, "run "+rs.ref.ID[:12], func(ctx context.Context) (time.Duration, bool, error) {
		status, hdr, body, err := h.post(ctx, "/v1/run", rs.body)
		switch {
		case err != nil:
			return 0, false, nil
		case status == http.StatusOK:
			if !bytes.Equal(body, rs.ref.Body) {
				return 0, false, fmt.Errorf("bytes diverged from reference (%d vs %d bytes)", len(body), len(rs.ref.Body))
			}
			ctr.Add(1)
			h.noteSource(hdr)
			h.noteRecent(rs.ref.ID)
			return 0, true, nil
		case status == http.StatusServiceUnavailable, status == http.StatusBadGateway, status == http.StatusTooManyRequests:
			return retryAfterOf(hdr), false, nil
		default:
			return 0, false, fmt.Errorf("unexpected status %d: %s", status, truncate(body))
		}
	})
}

// doSweep POSTs a sweep and asserts the assembled body matches the
// locally assembled reference.
func (h *harness) doSweep(ctx context.Context, rs *refSweep) {
	h.retryLoop(ctx, "sweep "+rs.ref.ID[:12], func(ctx context.Context) (time.Duration, bool, error) {
		status, hdr, body, err := h.post(ctx, "/v1/sweep", rs.body)
		switch {
		case err != nil:
			return 0, false, nil
		case status == http.StatusOK:
			if !bytes.Equal(body, rs.ref.Body) {
				return 0, false, fmt.Errorf("sweep bytes diverged from reference")
			}
			h.ctr.sweeps.Add(1)
			h.noteSource(hdr)
			h.noteRecent(rs.ref.ID)
			return 0, true, nil
		case status == http.StatusServiceUnavailable, status == http.StatusBadGateway, status == http.StatusTooManyRequests:
			return retryAfterOf(hdr), false, nil
		default:
			return 0, false, fmt.Errorf("unexpected sweep status %d: %s", status, truncate(body))
		}
	})
}

// doStream submits a job async and consumes its NDJSON stream through
// the gateway, asserting every frame — across any resume — matches the
// reference stream exactly. A truncated stream (backend died, gateway
// exhausted its attempts) retries from scratch; dedup and caching make
// the retry nearly free.
func (h *harness) doStream(ctx context.Context, rs *refSpec) {
	want := bytes.Join(append(append([][]byte{}, rs.ref.Lines...), rs.ref.Final), nil)
	h.retryLoop(ctx, "stream "+rs.ref.ID[:12], func(ctx context.Context) (time.Duration, bool, error) {
		status, hdr, body, err := h.post(ctx, "/v1/run?wait=0", rs.body)
		if err != nil || status == http.StatusServiceUnavailable || status == http.StatusBadGateway || status == http.StatusTooManyRequests {
			return retryAfterOf(hdr), false, nil
		}
		if status != http.StatusAccepted && status != http.StatusOK {
			return 0, false, fmt.Errorf("async submit status %d: %s", status, truncate(body))
		}
		id := hdr.Get("X-Rumord-Job")
		if id != rs.ref.ID {
			return 0, false, fmt.Errorf("backend minted job %s, reference %s (identity drift)", id, rs.ref.ID)
		}
		reqCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, "GET", h.gwURL+"/v1/jobs/"+id+"/stream", nil)
		if err != nil {
			return 0, false, nil
		}
		resp, err := h.client.Do(req)
		if err != nil {
			return 0, false, nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return retryAfterOf(resp.Header), false, nil
		}
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, false, nil
		}
		if bytes.Equal(got, want) {
			h.ctr.streams.Add(1)
			h.noteRecent(id)
			return 0, true, nil
		}
		if bytes.HasPrefix(want, got) {
			// Strict prefix: the stream was truncated mid-flight (no terminal
			// frame). That is a liveness hiccup, not wrong bytes — retry.
			h.ctr.truncations.Add(1)
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("stream bytes diverged from reference")
	})
}

// doPoll GETs the status of a recently completed job. Backends hold
// results in memory only, so after a kill the job may be gone everywhere
// — a 404 is a recorded miss, not a failure.
func (h *harness) doPoll(ctx context.Context) {
	id, ok := h.takeRecent()
	if !ok {
		return
	}
	h.retryLoop(ctx, "poll "+id[:12], func(ctx context.Context) (time.Duration, bool, error) {
		reqCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(reqCtx, "GET", h.gwURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return 0, false, nil
		}
		resp, err := h.client.Do(req)
		if err != nil {
			return 0, false, nil
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, false, nil
		}
		switch resp.StatusCode {
		case http.StatusOK:
			h.ctr.polls.Add(1)
			return 0, true, nil
		case http.StatusNotFound:
			h.ctr.pollMisses.Add(1)
			h.ctr.polls.Add(1)
			return 0, true, nil
		case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusTooManyRequests:
			return retryAfterOf(resp.Header), false, nil
		default:
			return 0, false, fmt.Errorf("unexpected poll status %d: %s", resp.StatusCode, truncate(body))
		}
	})
}

func (h *harness) noteRecent(id string) {
	h.recentMu.Lock()
	h.recent = append(h.recent, id)
	if len(h.recent) > 64 {
		h.recent = h.recent[len(h.recent)-64:]
	}
	h.recentMu.Unlock()
}

func (h *harness) takeRecent() (string, bool) {
	h.recentMu.Lock()
	defer h.recentMu.Unlock()
	if len(h.recent) == 0 {
		return "", false
	}
	return h.recent[len(h.recent)-1], true
}

func truncate(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
