// Command bench runs the protocol micro-benchmarks that gate performance
// work on the simulation engine and writes the results as JSON (by default
// BENCH_PR4.json), so the perf trajectory is tracked in-repo from PR 1
// onward.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_PR4.json] [-benchtime 2s] [-smoke]
//	go run ./cmd/bench -giant [-giant-sizes 1000000,...] [-out BENCH_PR7.json]
//	go run ./cmd/bench -giant -giant-specs "gnp:10000000,2e-7;randreg:10000000,8" [-out BENCH_PR9.json]
//	go run ./cmd/bench -serve-overhead [-out BENCH_PR8.json]
//
// Before timing anything, bench cross-checks the engines: for every one of
// the five protocols it runs the same multi-trial sweep through the serial
// (K = 1 lanes of serial processes) and fused batched paths and exits
// nonzero if any pair of per-trial results diverges — the batched suite
// cannot silently rot. -smoke runs only this cross-check (one tiny point
// per protocol) and skips the timed benchmarks; CI uses it.
//
// Each entry records ns/op for the named benchmark plus a baseline and the
// resulting speedup. Two baseline sources exist: the experiment benchmarks
// compare against the recorded serial-seed medians from before PR 1
// (measured on the same single-core reference machine), while the
// MultiTrial*Batched benchmarks compare against their *Serial counterpart
// measured in the same process — the per-trial serial path versus the
// fused lane engine, on identical hardware and inputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rumor"
	"rumor/internal/graph"
)

// baselineNsPerOp holds the seed-tree (serial engine) medians measured
// before the PR-1 deterministic parallel round engine landed: go1.24,
// GOMAXPROCS=1, Intel Xeon @ 2.10GHz, -benchtime=2s, median of 3.
var baselineNsPerOp = map[string]float64{
	"E1Fig1aStar":                      6735673,
	"E2Fig1bDoubleStar":                3948597,
	"E3Fig1cHeavyTree":                 284253,
	"E4Fig1dSiameseTree":               953133,
	"E5Fig1eCycleStars":                868522,
	"VisitExchangeAgentStepThroughput": 166797,
	"StationaryPlacement":              350245,
}

type entry struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Baseline        string  `json:"baseline,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	Iterations      int     `json:"iterations"`
}

type report struct {
	Timestamp  string  `json:"timestamp"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func benchExperiment(id string) func(b *testing.B) {
	return func(b *testing.B) {
		spec, ok := rumor.ExperimentByID(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		for i := 0; i < b.N; i++ {
			tab, err := spec.Run(rumor.ExperimentConfig{
				Seed:   uint64(i + 1),
				Scale:  rumor.ScaleSmall,
				Trials: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

func benchStepThroughput(b *testing.B) {
	g := rumor.Hypercube(14)
	p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(1), rumor.AgentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func benchStationaryPlacement(b *testing.B) {
	g := rumor.Hypercube(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(uint64(i+1)), rumor.AgentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Protocol factories shared by the engine cross-check and the multi-trial
// benchmarks. protoNames lists every protocol the simulator serves; both
// engine paths are built for each, so a protocol without a fused bundle
// cannot slip through the cross-check.
var protoNames = []string{"push", "ppull", "visitx", "meetx", "hybrid"}

func serialFactory(proto string, g *rumor.Graph) func(rng *rumor.RNG) (rumor.Process, error) {
	return func(rng *rumor.RNG) (rumor.Process, error) {
		switch proto {
		case "push":
			return rumor.NewPush(g, 0, rng, rumor.PushOptions{})
		case "ppull":
			return rumor.NewPushPull(g, 0, rng, rumor.PushPullOptions{})
		case "meetx":
			return rumor.NewMeetExchange(g, 0, rng, rumor.AgentOptions{})
		case "hybrid":
			return rumor.NewHybrid(g, 0, rng, rumor.AgentOptions{})
		default:
			return rumor.NewVisitExchange(g, 0, rng, rumor.AgentOptions{})
		}
	}
}

func laneFactory(proto string, g *rumor.Graph) rumor.LaneFactory {
	return func(rngs []*rumor.RNG) (rumor.LaneProcess, error) {
		switch proto {
		case "push":
			return rumor.NewBatchedPush(g, 0, rngs, rumor.PushOptions{})
		case "ppull":
			return rumor.NewBatchedPushPull(g, 0, rngs, rumor.PushPullOptions{})
		case "meetx":
			return rumor.NewBatchedMeetExchange(g, 0, rngs, rumor.AgentOptions{})
		case "hybrid":
			return rumor.NewBatchedHybrid(g, 0, rngs, rumor.AgentOptions{})
		default:
			return rumor.NewBatchedVisitExchange(g, 0, rngs, rumor.AgentOptions{})
		}
	}
}

// verifyEngines runs every protocol's batched bundle against the serial
// path on the same points and reports the first divergence. The serving
// and experiment layers rely on this equivalence for cache identity, so a
// bench run refuses to publish numbers for diverging engines. The points
// include a seeded streamed random family (G(n, p) through the two-pass
// skip-sampling builder) alongside the deterministic families, so the
// batched == serial contract is pinned on that build path too.
func verifyEngines() error {
	gnpSpec, err := graph.ParseSpec("gnp:400,0.05")
	if err != nil {
		return err
	}
	gnp, err := gnpSpec.BuildSeeded(417)
	if err != nil {
		return err
	}
	if !rumor.IsConnected(gnp) {
		// Fixed seed, so this is deterministic: at mean degree ~20 the
		// realization is connected; a trip here means the sampler changed.
		return fmt.Errorf("gnp:400,0.05 @417 realization is disconnected; cross-check needs a connected instance")
	}
	graphs := []*rumor.Graph{rumor.Star(257), rumor.Hypercube(7), gnp}
	const trials, seed = 8, 417
	for _, g := range graphs {
		for _, proto := range protoNames {
			serial, err := rumor.RunMany(g, serialFactory(proto, g), trials, 0, seed)
			if err != nil {
				return fmt.Errorf("%s on %s: serial: %w", proto, g.Name(), err)
			}
			batched, err := rumor.RunManyBatched(g, laneFactory(proto, g), trials, 0, seed)
			if err != nil {
				return fmt.Errorf("%s on %s: batched: %w", proto, g.Name(), err)
			}
			for t := range serial {
				if !reflect.DeepEqual(serial[t], batched[t]) {
					return fmt.Errorf("%s on %s trial %d: batched engine diverges from serial\nserial:  %+v\nbatched: %+v",
						proto, g.Name(), t, serial[t], batched[t])
				}
			}
		}
	}
	return nil
}

// Multi-trial sweeps: the E1/E2-style workload — every figure in the paper
// is a distribution over many trials of one (graph, protocol, n) point —
// run once through serial per-trial processes (core.RunMany, K = 1 lanes)
// and once through the fused batched bundles (core.RunManyBatched).
// Identical seeds, identical results (pinned by the cross-check above and
// core's lane-equivalence tests); only throughput differs.

const multiTrials = 8

// multiTrialCase is one protocol sweep over a deterministic graph family.
type multiTrialCase struct {
	graphs []*rumor.Graph
	proto  string
}

func e1StarSweep() []*rumor.Graph {
	return []*rumor.Graph{rumor.Star(1024), rumor.Star(2048), rumor.Star(4096)}
}

func e2DoubleStarSweep() []*rumor.Graph {
	return []*rumor.Graph{rumor.DoubleStar(512), rumor.DoubleStar(1024), rumor.DoubleStar(2048)}
}

func hypercubeSweep() []*rumor.Graph {
	return []*rumor.Graph{rumor.Hypercube(12), rumor.Hypercube(13), rumor.Hypercube(14)}
}

func benchMultiTrialSerial(c multiTrialCase) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for gi, g := range c.graphs {
				seed := uint64(i*len(c.graphs) + gi + 1)
				if _, err := rumor.RunMany(g, serialFactory(c.proto, g), multiTrials, 0, seed); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benchMultiTrialBatched(c multiTrialCase) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for gi, g := range c.graphs {
				seed := uint64(i*len(c.graphs) + gi + 1)
				if _, err := rumor.RunManyBatched(g, laneFactory(c.proto, g), multiTrials, 0, seed); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// writeJSON marshals v indented and writes it to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchPR4Baseline reads one benchmark's ns/op out of BENCH_PR4.json when
// the file is present (0 otherwise).
func benchPR4Baseline(name string) float64 {
	data, err := os.ReadFile("BENCH_PR4.json")
	if err != nil {
		return 0
	}
	var rep report
	if json.Unmarshal(data, &rep) != nil {
		return 0
	}
	for _, e := range rep.Benchmarks {
		if e.Name == name {
			return e.NsPerOp
		}
	}
	return 0
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_PR4.json, or BENCH_PR7.json with -giant)")
	benchtime := flag.Duration("benchtime", 2*time.Second, "per-benchmark target time")
	smoke := flag.Bool("smoke", false, "run only the engine cross-check (one tiny point per protocol), no timed benchmarks")
	giant := flag.Bool("giant", false, "run the giant-graph out-of-core harness (streaming build, mmap spill, fixed-seed replay) instead of the timed benchmarks")
	serveOverhead := flag.Bool("serve-overhead", false, "measure the metrics layer's cost on the cached /v1/run hot path (instrumented vs DisableMetrics) instead of the timed benchmarks")
	giantSizes := flag.String("giant-sizes", "1000000,10000000,100000000", "comma-separated star leaf counts for -giant")
	giantSpecs := flag.String("giant-specs", "", "semicolon-separated extra graph specs for -giant (random families included, e.g. \"gnp:10000000,2e-7;randreg:10000000,8\"); empty -giant-sizes runs only these")
	giantDir := flag.String("giant-dir", "", "spill directory for -giant (default: a temp dir, removed afterwards)")
	overheadChild := flag.String("serve-overhead-child", "", "internal: benchmark one cached-run server variant (instrumented|bare) in this process and print ns/op")
	flag.Parse()

	if *overheadChild != "" {
		if err := runOverheadChild(*overheadChild); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := verifyEngines(); err != nil {
		fmt.Fprintf(os.Stderr, "engine cross-check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("engine cross-check passed: batched == serial for all five protocols")
	if *smoke {
		return
	}
	if *serveOverhead {
		path := *out
		if path == "" {
			path = "BENCH_PR8.json"
		}
		if err := runServeOverhead(path, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "serve-overhead harness FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *giant {
		specs, err := parseGiantSizes(*giantSizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		extra, err := parseGiantSpecs(*giantSpecs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = append(specs, extra...)
		if len(specs) == 0 {
			fmt.Fprintln(os.Stderr, "giant: no points requested (-giant-sizes and -giant-specs both empty)")
			os.Exit(2)
		}
		dir, tmp := *giantDir, ""
		if dir == "" {
			var err error
			if tmp, err = os.MkdirTemp("", "rumor-giant-*"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			dir = tmp
		}
		path := *out
		if path == "" {
			path = "BENCH_PR7.json"
		}
		err = runGiant(specs, dir, path)
		if tmp != "" {
			os.RemoveAll(tmp)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "giant-graph harness FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_PR4.json"
	}

	e1VisitX := multiTrialCase{graphs: e1StarSweep(), proto: "visitx"}
	e1MeetX := multiTrialCase{graphs: e1StarSweep(), proto: "meetx"}
	e2VisitX := multiTrialCase{graphs: e2DoubleStarSweep(), proto: "visitx"}
	e1Push := multiTrialCase{graphs: e1StarSweep(), proto: "push"}
	cubePPull := multiTrialCase{graphs: hypercubeSweep(), proto: "ppull"}
	e1Hybrid := multiTrialCase{graphs: e1StarSweep(), proto: "hybrid"}
	e2Hybrid := multiTrialCase{graphs: e2DoubleStarSweep(), proto: "hybrid"}

	benches := []struct {
		name string
		fn   func(b *testing.B)
		// vsRun names the earlier entry of this run that serves as the
		// baseline (the serial per-trial path); empty entries use the
		// recorded pre-PR-1 serial-seed medians, when one exists.
		vsRun string
	}{
		{"E1Fig1aStar", benchExperiment("fig1a-star"), ""},
		{"E2Fig1bDoubleStar", benchExperiment("fig1b-doublestar"), ""},
		{"E3Fig1cHeavyTree", benchExperiment("fig1c-heavytree"), ""},
		{"E4Fig1dSiameseTree", benchExperiment("fig1d-siamese"), ""},
		{"E5Fig1eCycleStars", benchExperiment("fig1e-cyclestars"), ""},
		{"VisitExchangeAgentStepThroughput", benchStepThroughput, ""},
		{"StationaryPlacement", benchStationaryPlacement, ""},
		{"MultiTrialVisitXStarSerial", benchMultiTrialSerial(e1VisitX), ""},
		{"MultiTrialVisitXStarBatched", benchMultiTrialBatched(e1VisitX), "MultiTrialVisitXStarSerial"},
		{"MultiTrialMeetXStarSerial", benchMultiTrialSerial(e1MeetX), ""},
		{"MultiTrialMeetXStarBatched", benchMultiTrialBatched(e1MeetX), "MultiTrialMeetXStarSerial"},
		{"MultiTrialVisitXDoubleStarSerial", benchMultiTrialSerial(e2VisitX), ""},
		{"MultiTrialVisitXDoubleStarBatched", benchMultiTrialBatched(e2VisitX), "MultiTrialVisitXDoubleStarSerial"},
		{"MultiTrialPushStarSerial", benchMultiTrialSerial(e1Push), ""},
		{"MultiTrialPushStarBatched", benchMultiTrialBatched(e1Push), "MultiTrialPushStarSerial"},
		{"MultiTrialPPullHypercubeSerial", benchMultiTrialSerial(cubePPull), ""},
		{"MultiTrialPPullHypercubeBatched", benchMultiTrialBatched(cubePPull), "MultiTrialPPullHypercubeSerial"},
		{"MultiTrialHybridStarSerial", benchMultiTrialSerial(e1Hybrid), ""},
		{"MultiTrialHybridStarBatched", benchMultiTrialBatched(e1Hybrid), "MultiTrialHybridStarSerial"},
		{"MultiTrialHybridDoubleStarSerial", benchMultiTrialSerial(e2Hybrid), ""},
		{"MultiTrialHybridDoubleStarBatched", benchMultiTrialBatched(e2Hybrid), "MultiTrialHybridDoubleStarSerial"},
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	measured := make(map[string]float64)
	for _, bm := range benches {
		// testing.Benchmark scales iterations to ~1s; repeat until
		// benchtime elapses (at least once, whatever the budget) and keep
		// the least-interfered measurement with its iteration count.
		deadline := time.Now().Add(*benchtime)
		best := -1.0
		iters := 0
		for {
			res := testing.Benchmark(bm.fn)
			ns := float64(res.NsPerOp())
			if best < 0 || ns < best {
				best = ns
				iters = res.N
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
		measured[bm.name] = best
		e := entry{Name: bm.name, NsPerOp: best, Iterations: iters}
		if bm.vsRun != "" {
			e.BaselineNsPerOp = measured[bm.vsRun]
			e.Baseline = bm.vsRun + " (this run)"
		} else if base, ok := baselineNsPerOp[bm.name]; ok {
			e.BaselineNsPerOp = base
			e.Baseline = "pre-PR1 serial seed"
		}
		if e.BaselineNsPerOp > 0 {
			e.Speedup = e.BaselineNsPerOp / best
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-34s %12.0f ns/op", e.Name, e.NsPerOp)
		if e.Speedup > 0 {
			fmt.Printf("   %5.2fx vs %s", e.Speedup, e.Baseline)
		}
		fmt.Println()
	}

	if err := writeJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
