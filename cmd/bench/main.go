// Command bench runs the protocol micro-benchmarks that gate performance
// work on the simulation engine and writes the results as JSON (by default
// BENCH_PR2.json), so the perf trajectory is tracked in-repo from PR 1
// onward.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_PR2.json] [-benchtime 2s]
//
// Each entry records ns/op for the named benchmark plus a baseline and the
// resulting speedup. Two baseline sources exist: the experiment benchmarks
// compare against the recorded serial-seed medians from before PR 1
// (measured on the same single-core reference machine), while the
// MultiTrial*Batched benchmarks compare against their *Serial counterpart
// measured in the same process — the unbatched PR-1 trial path versus the
// PR-2 fused batched engine, on identical hardware and inputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"rumor"
)

// baselineNsPerOp holds the seed-tree (serial engine) medians measured
// before the PR-1 deterministic parallel round engine landed: go1.24,
// GOMAXPROCS=1, Intel Xeon @ 2.10GHz, -benchtime=2s, median of 3.
var baselineNsPerOp = map[string]float64{
	"E1Fig1aStar":                      6735673,
	"E2Fig1bDoubleStar":                3948597,
	"E3Fig1cHeavyTree":                 284253,
	"E4Fig1dSiameseTree":               953133,
	"E5Fig1eCycleStars":                868522,
	"VisitExchangeAgentStepThroughput": 166797,
	"StationaryPlacement":              350245,
}

type entry struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Baseline        string  `json:"baseline,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	Iterations      int     `json:"iterations"`
}

type report struct {
	Timestamp  string  `json:"timestamp"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func benchExperiment(id string) func(b *testing.B) {
	return func(b *testing.B) {
		spec, ok := rumor.ExperimentByID(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		for i := 0; i < b.N; i++ {
			tab, err := spec.Run(rumor.ExperimentConfig{
				Seed:   uint64(i + 1),
				Scale:  rumor.ScaleSmall,
				Trials: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

func benchStepThroughput(b *testing.B) {
	g := rumor.Hypercube(14)
	p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(1), rumor.AgentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func benchStationaryPlacement(b *testing.B) {
	g := rumor.Hypercube(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(uint64(i+1)), rumor.AgentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Multi-trial sweeps: the E1/E2-style workload — every figure in the paper
// is a distribution over many trials of one (graph, protocol, n) point —
// run once through the unbatched PR-1 trial pool (core.RunMany) and once
// through the PR-2 fused batched engine (core.RunManyBatched). Identical
// seeds, identical results (pinned by the core equivalence tests); only
// throughput differs.

const multiTrials = 8

// multiTrialCase is one agent-protocol sweep over a deterministic graph
// family.
type multiTrialCase struct {
	graphs []*rumor.Graph
	proto  string // "visitx" or "meetx"
}

func e1StarSweep() []*rumor.Graph {
	return []*rumor.Graph{rumor.Star(1024), rumor.Star(2048), rumor.Star(4096)}
}

func e2DoubleStarSweep() []*rumor.Graph {
	return []*rumor.Graph{rumor.DoubleStar(512), rumor.DoubleStar(1024), rumor.DoubleStar(2048)}
}

func benchMultiTrialSerial(c multiTrialCase) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for gi, g := range c.graphs {
				seed := uint64(i*len(c.graphs) + gi + 1)
				_, err := rumor.RunMany(g, func(rng *rumor.RNG) (rumor.Process, error) {
					if c.proto == "meetx" {
						return rumor.NewMeetExchange(g, 0, rng, rumor.AgentOptions{})
					}
					return rumor.NewVisitExchange(g, 0, rng, rumor.AgentOptions{})
				}, multiTrials, 0, seed)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benchMultiTrialBatched(c multiTrialCase) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for gi, g := range c.graphs {
				seed := uint64(i*len(c.graphs) + gi + 1)
				_, err := rumor.RunManyBatched(g, func(rngs []*rumor.RNG) (rumor.BatchedProcess, error) {
					if c.proto == "meetx" {
						return rumor.NewBatchedMeetExchange(g, 0, rngs, rumor.AgentOptions{})
					}
					return rumor.NewBatchedVisitExchange(g, 0, rngs, rumor.AgentOptions{})
				}, multiTrials, 0, seed)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output JSON path")
	benchtime := flag.Duration("benchtime", 2*time.Second, "per-benchmark target time")
	flag.Parse()

	e1VisitX := multiTrialCase{graphs: e1StarSweep(), proto: "visitx"}
	e1MeetX := multiTrialCase{graphs: e1StarSweep(), proto: "meetx"}
	e2VisitX := multiTrialCase{graphs: e2DoubleStarSweep(), proto: "visitx"}

	benches := []struct {
		name string
		fn   func(b *testing.B)
		// vsRun names the earlier entry of this run that serves as the
		// baseline (the unbatched PR-1 path); empty entries use the
		// recorded pre-PR-1 serial-seed medians, when one exists.
		vsRun string
	}{
		{"E1Fig1aStar", benchExperiment("fig1a-star"), ""},
		{"E2Fig1bDoubleStar", benchExperiment("fig1b-doublestar"), ""},
		{"E3Fig1cHeavyTree", benchExperiment("fig1c-heavytree"), ""},
		{"E4Fig1dSiameseTree", benchExperiment("fig1d-siamese"), ""},
		{"E5Fig1eCycleStars", benchExperiment("fig1e-cyclestars"), ""},
		{"VisitExchangeAgentStepThroughput", benchStepThroughput, ""},
		{"StationaryPlacement", benchStationaryPlacement, ""},
		{"MultiTrialVisitXStarSerial", benchMultiTrialSerial(e1VisitX), ""},
		{"MultiTrialVisitXStarBatched", benchMultiTrialBatched(e1VisitX), "MultiTrialVisitXStarSerial"},
		{"MultiTrialMeetXStarSerial", benchMultiTrialSerial(e1MeetX), ""},
		{"MultiTrialMeetXStarBatched", benchMultiTrialBatched(e1MeetX), "MultiTrialMeetXStarSerial"},
		{"MultiTrialVisitXDoubleStarSerial", benchMultiTrialSerial(e2VisitX), ""},
		{"MultiTrialVisitXDoubleStarBatched", benchMultiTrialBatched(e2VisitX), "MultiTrialVisitXDoubleStarSerial"},
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	measured := make(map[string]float64)
	for _, bm := range benches {
		// testing.Benchmark scales iterations to ~1s; repeat until
		// benchtime elapses (at least once, whatever the budget) and keep
		// the least-interfered measurement with its iteration count.
		deadline := time.Now().Add(*benchtime)
		best := -1.0
		iters := 0
		for {
			res := testing.Benchmark(bm.fn)
			ns := float64(res.NsPerOp())
			if best < 0 || ns < best {
				best = ns
				iters = res.N
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
		measured[bm.name] = best
		e := entry{Name: bm.name, NsPerOp: best, Iterations: iters}
		if bm.vsRun != "" {
			e.BaselineNsPerOp = measured[bm.vsRun]
			e.Baseline = bm.vsRun + " (this run)"
		} else if base, ok := baselineNsPerOp[bm.name]; ok {
			e.BaselineNsPerOp = base
			e.Baseline = "pre-PR1 serial seed"
		}
		if e.BaselineNsPerOp > 0 {
			e.Speedup = e.BaselineNsPerOp / best
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-34s %12.0f ns/op", e.Name, e.NsPerOp)
		if e.Speedup > 0 {
			fmt.Printf("   %5.2fx vs %s", e.Speedup, e.Baseline)
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
