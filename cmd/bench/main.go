// Command bench runs the protocol micro-benchmarks that gate performance
// work on the simulation engine and writes the results as JSON (by default
// BENCH_PR1.json), so the perf trajectory is tracked in-repo from PR 1
// onward.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_PR1.json] [-benchtime 2s]
//
// Each entry records ns/op for the named benchmark plus the recorded
// baseline of the serial seed implementation (measured on the same
// single-core reference machine the PR-1 numbers come from), and the
// resulting speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"rumor"
)

// baselineNsPerOp holds the seed-tree (serial engine) medians measured
// before the PR-1 deterministic parallel round engine landed: go1.24,
// GOMAXPROCS=1, Intel Xeon @ 2.10GHz, -benchtime=2s, median of 3.
var baselineNsPerOp = map[string]float64{
	"E1Fig1aStar":                      6735673,
	"E2Fig1bDoubleStar":                3948597,
	"E3Fig1cHeavyTree":                 284253,
	"E4Fig1dSiameseTree":               953133,
	"E5Fig1eCycleStars":                868522,
	"VisitExchangeAgentStepThroughput": 166797,
	"StationaryPlacement":              350245,
}

type entry struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	Iterations      int     `json:"iterations"`
}

type report struct {
	Timestamp  string  `json:"timestamp"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func benchExperiment(id string) func(b *testing.B) {
	return func(b *testing.B) {
		spec, ok := rumor.ExperimentByID(id)
		if !ok {
			b.Fatalf("experiment %q not registered", id)
		}
		for i := 0; i < b.N; i++ {
			tab, err := spec.Run(rumor.ExperimentConfig{
				Seed:   uint64(i + 1),
				Scale:  rumor.ScaleSmall,
				Trials: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

func benchStepThroughput(b *testing.B) {
	g := rumor.Hypercube(14)
	p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(1), rumor.AgentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func benchStationaryPlacement(b *testing.B) {
	g := rumor.Hypercube(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(uint64(i+1)), rumor.AgentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_PR1.json", "output JSON path")
	benchtime := flag.Duration("benchtime", 2*time.Second, "per-benchmark target time")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"E1Fig1aStar", benchExperiment("fig1a-star")},
		{"E2Fig1bDoubleStar", benchExperiment("fig1b-doublestar")},
		{"E3Fig1cHeavyTree", benchExperiment("fig1c-heavytree")},
		{"E4Fig1dSiameseTree", benchExperiment("fig1d-siamese")},
		{"E5Fig1eCycleStars", benchExperiment("fig1e-cyclestars")},
		{"VisitExchangeAgentStepThroughput", benchStepThroughput},
		{"StationaryPlacement", benchStationaryPlacement},
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, bm := range benches {
		// testing.Benchmark scales iterations to ~1s; loop until benchtime.
		var res testing.BenchmarkResult
		deadline := time.Now().Add(*benchtime)
		best := -1.0
		iters := 0
		for time.Now().Before(deadline) {
			res = testing.Benchmark(bm.fn)
			ns := float64(res.NsPerOp())
			iters = res.N
			if best < 0 || ns < best {
				best = ns // keep the least-interfered measurement
			}
		}
		e := entry{Name: bm.name, NsPerOp: best, Iterations: iters}
		if base, ok := baselineNsPerOp[bm.name]; ok {
			e.BaselineNsPerOp = base
			e.Speedup = base / best
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-34s %12.0f ns/op", e.Name, e.NsPerOp)
		if e.Speedup > 0 {
			fmt.Printf("   %5.2fx vs baseline", e.Speedup)
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
