package main

// -serve-overhead measures what the PR-8 metrics layer costs on the
// serving hot path: the same cached /v1/run request is driven through
// two in-process serve.Servers — one with the default instrumented
// options, one with DisableMetrics — and the per-request deltas are
// published alongside microcosts of the individual metric operations.
// The acceptance target is <1% overhead on the cached path; the report
// records the measured percentage and a pass flag so CI can gate on it.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"rumor/internal/metrics"
	"rumor/internal/serve"
)

// overheadSpec is the cached request both servers serve: small enough
// that the handler path (decode, normalize, shard lookup, replay)
// dominates, which is exactly where the instrumentation sits.
const overheadSpec = `{"graph":"star:64","protocol":"visitx","trials":4,"seed":1}`

type overheadReport struct {
	Timestamp       string  `json:"timestamp"`
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	Spec            string  `json:"spec"`
	InstrumentedNs  float64 `json:"cached_run_instrumented_ns_per_op"`
	BareNs          float64 `json:"cached_run_bare_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
	Target          string  `json:"target"`
	Pass            bool    `json:"pass"`
	Micro           []entry `json:"metric_op_microcosts"`
}

// newOverheadServer builds a server and warms the cache so every
// benchmarked request replays from memory (X-Rumord-Source: cache).
func newOverheadServer(disable bool) (*serve.Server, http.Handler, error) {
	s, err := serve.New(serve.Options{Workers: 2, DisableMetrics: disable})
	if err != nil {
		return nil, nil, err
	}
	h := s.Handler()
	for i, want := range []string{"", "cache"} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader([]byte(overheadSpec)))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, nil, fmt.Errorf("warmup %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if want != "" && rec.Header().Get("X-Rumord-Source") != want {
			return nil, nil, fmt.Errorf("warmup %d: source %q, want %q", i, rec.Header().Get("X-Rumord-Source"), want)
		}
	}
	return s, h, nil
}

func benchCachedRun(h http.Handler) func(b *testing.B) {
	body := []byte(overheadSpec)
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}
}

// bestOf repeats a benchmark until the budget elapses and keeps the
// fastest (least-interfered) ns/op, like the main benchmark loop.
func bestOf(fn func(b *testing.B), budget time.Duration) (ns float64, iters int) {
	deadline := time.Now().Add(budget)
	ns = -1
	for {
		res := testing.Benchmark(fn)
		if v := float64(res.NsPerOp()); ns < 0 || v < ns {
			ns = v
			iters = res.N
		}
		if !time.Now().Before(deadline) {
			return ns, iters
		}
	}
}

// runOverheadChild is the re-exec'd half of the overhead measurement:
// benchmark one server variant in a pristine process and print ns/op.
// Running both variants in one process skews the comparison by tens of
// nanoseconds — whichever server is built second inherits a different
// heap layout — so the parent execs the same binary once per sample and
// the only difference between the two populations is the metrics branch.
func runOverheadChild(variant string) error {
	s, h, err := newOverheadServer(variant == "bare")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	res := testing.Benchmark(benchCachedRun(h))
	fmt.Println(res.NsPerOp())
	return nil
}

// sampleChild execs one child round and parses its ns/op.
func sampleChild(exe, variant string) (float64, error) {
	out, err := exec.Command(exe, "-serve-overhead-child", variant).Output()
	if err != nil {
		return 0, fmt.Errorf("child %s: %w", variant, err)
	}
	fields := strings.Fields(string(out))
	if len(fields) == 0 {
		return 0, fmt.Errorf("child %s: empty output", variant)
	}
	ns, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		return 0, fmt.Errorf("child %s: parse %q: %w", variant, out, err)
	}
	return ns, nil
}

// microBenches times the individual metric operations the hot path
// pays: pre-resolved counter and histogram updates, plus a full
// registry render at serve-like cardinality for scrape-cost context.
func microBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("bench_counter_total", "bench")
	child := reg.CounterVec("bench_vec_total", "bench", "k").With("v")
	hist := reg.Histogram("bench_seconds", "bench", metrics.ExpBuckets(0.0001, 2, 21))
	// Scrape-cost registry shaped like rumord's: a few plain counters,
	// labeled families, and 21-bucket histograms per protocol.
	scrapeReg := metrics.NewRegistry()
	for i := 0; i < 12; i++ {
		scrapeReg.Counter(fmt.Sprintf("scrape_counter_%d_total", i), "bench").Add(int64(i))
	}
	vec := scrapeReg.CounterVec("scrape_vec_total", "bench", "source")
	for _, s := range []string{"run", "dedup", "cache", "disk"} {
		vec.With(s).Inc()
	}
	hv := scrapeReg.HistogramVec("scrape_seconds", "bench", metrics.ExpBuckets(0.0001, 2, 21), "protocol")
	for _, p := range []string{"push", "ppull", "visitx", "meetx", "hybrid"} {
		h := hv.With(p)
		for i := 0; i < 100; i++ {
			h.Observe(float64(i) * 0.0001)
		}
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"MetricsCounterInc", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctr.Inc()
			}
		}},
		{"MetricsVecChildInc", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				child.Inc()
			}
		}},
		{"MetricsHistogramObserve", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hist.Observe(0.0042)
			}
		}},
		{"MetricsRegistryWriteText", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := scrapeReg.WriteText(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// runServeOverhead measures instrumented vs bare cached-run latency and
// writes the BENCH_PR8.json report. The two servers are benchmarked in
// alternating rounds inside bestOf's budget so ambient machine noise
// hits both sides roughly equally.
func runServeOverhead(out string, benchtime time.Duration) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary for child rounds: %w", err)
	}
	// Alternating fresh-process rounds; each child is one ~1s
	// testing.Benchmark run, and the minimum per side is the
	// least-interfered sample.
	rounds := int(benchtime / (4 * time.Second))
	if rounds < 3 {
		rounds = 3
	}
	instrNs, bareNs := -1.0, -1.0
	for i := 0; i < rounds; i++ {
		iv, err := sampleChild(exe, "instrumented")
		if err != nil {
			return err
		}
		bv, err := sampleChild(exe, "bare")
		if err != nil {
			return err
		}
		if instrNs < 0 || iv < instrNs {
			instrNs = iv
		}
		if bareNs < 0 || bv < bareNs {
			bareNs = bv
		}
	}
	overhead := (instrNs - bareNs) / bareNs * 100

	rep := overheadReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Spec:            overheadSpec,
		InstrumentedNs:  instrNs,
		BareNs:          bareNs,
		OverheadPercent: overhead,
		Target:          "instrumented cached /v1/run within 1% of DisableMetrics",
		Pass:            overhead < 1.0,
	}
	fmt.Printf("%-34s %12.0f ns/op\n", "CachedRunInstrumented", instrNs)
	fmt.Printf("%-34s %12.0f ns/op\n", "CachedRunBare", bareNs)
	fmt.Printf("%-34s %11.3f%%  (target <1%%)\n", "MetricsOverhead", overhead)
	for _, mb := range microBenches() {
		ns, iters := bestOf(mb.fn, benchtime/4)
		rep.Micro = append(rep.Micro, entry{Name: mb.name, NsPerOp: ns, Iterations: iters})
		fmt.Printf("%-34s %12.1f ns/op\n", mb.name, ns)
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.Pass {
		return fmt.Errorf("metrics overhead %.3f%% exceeds the 1%% budget", overhead)
	}
	return nil
}
