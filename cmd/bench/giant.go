// Giant-graph mode: the out-of-core acceptance harness. For each
// requested size it builds a star through the streaming two-pass path,
// samples the build's peak heap against the final CSR footprint (the
// streaming builder's contract is peak <= ~1.1x the resident graph),
// spills the graph through the content-addressed disk store, reopens it
// mmap-backed, and replays a fixed-seed push sweep on both copies — the
// two result sets must be identical. Violations exit nonzero, so CI can
// run this under GOMEMLIMIT as the giant-graph smoke gate.
package main

import (
	"bufio"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rumor"
	"rumor/internal/graph"
)

// giantPoint is one size's measurements in the -giant report.
type giantPoint struct {
	N                int     `json:"n"`
	Edges            int64   `json:"edges"`
	CSRBytes         int64   `json:"csr_bytes"`
	OffsetWidth      int     `json:"offset_width_bytes"`
	BytesPerEdge     float64 `json:"bytes_per_edge"`
	BuildSeconds     float64 `json:"build_seconds"`
	BuildPeakBytes   int64   `json:"build_peak_heap_bytes"`
	BuildPeakRatio   float64 `json:"build_peak_ratio"` // peak heap growth / csr_bytes
	SpillSeconds     float64 `json:"spill_seconds"`    // encode + reopen
	MmapBacked       bool    `json:"mmap_backed"`
	SweepSecondsHeap float64 `json:"sweep_seconds_heap"`
	SweepSecondsMmap float64 `json:"sweep_seconds_mmap"`
	SweepIdentical   bool    `json:"sweep_identical"`
	VmHWMBytesSoFar  int64   `json:"vm_hwm_bytes_so_far,omitempty"`
}

// shardScaling records a fixed batched sweep timed at GOMAXPROCS 1 and
// NumCPU, with the BENCH_PR4 MultiTrialPushStarBatched measurement (when
// the file is present) as the cross-PR reference for the same workload
// shape.
type shardScaling struct {
	Workload        string  `json:"workload"`
	SecondsProcs1   float64 `json:"seconds_gomaxprocs_1"`
	SecondsProcsN   float64 `json:"seconds_gomaxprocs_numcpu"`
	NumCPU          int     `json:"num_cpu"`
	Scaling         float64 `json:"scaling"` // procs1 / procsN
	PR4BaselineNsOp float64 `json:"bench_pr4_push_star_batched_ns_per_op,omitempty"`
}

type giantReport struct {
	Timestamp    string        `json:"timestamp"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	NumCPU       int           `json:"num_cpu"`
	GOMEMLIMIT   string        `json:"gomemlimit,omitempty"`
	Giant        []giantPoint  `json:"giant"`
	ShardScaling *shardScaling `json:"shard_scaling,omitempty"`
}

// buildPeakRatioMax is the acceptance bound on streaming-build peak heap
// growth relative to the final CSR: the two-pass builder allocates the
// CSR arrays and O(1) scratch, nothing else.
const buildPeakRatioMax = 1.1

// sampleHeapPeak polls HeapAlloc until stop closes and reports the
// maximum observed. 10ms resolution is ample: the build's heap profile is
// two long plateaus (offsets, then offsets+neighbors), not spikes.
func sampleHeapPeak(stop <-chan struct{}, peak *uint64) {
	var ms runtime.MemStats
	for {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > *peak {
			*peak = ms.HeapAlloc
		}
		select {
		case <-stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// vmHWMBytes reads the process peak RSS from /proc/self/status (0 where
// unavailable, e.g. non-Linux).
func vmHWMBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

// giantPushSweep runs the fixed-seed truncated push sweep used for the
// heap-vs-mmap identity check. Push keeps per-lane state O(informed), so
// the sweep's own footprint stays tiny next to the graph.
func giantPushSweep(g *rumor.Graph) ([]rumor.Result, error) {
	factory := func(rngs []*rumor.RNG) (rumor.LaneProcess, error) {
		return rumor.NewBatchedPush(g, 0, rngs, rumor.PushOptions{})
	}
	// Push on a star needs Theta(n log n) rounds; 3 rounds of 2 trials
	// exercise the full draw/commit machinery and truncate deterministically.
	return rumor.RunManyBatched(g, factory, 2, 3, 12345)
}

// runGiantPoint measures one star size end to end.
func runGiantPoint(leaves int, dir string) (giantPoint, error) {
	var pt giantPoint

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	peak := baseline
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { sampleHeapPeak(stop, &peak); close(done) }()

	t0 := time.Now()
	g := graph.Star(leaves)
	pt.BuildSeconds = time.Since(t0).Seconds()
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}

	pt.N = g.N()
	pt.Edges = int64(g.M())
	pt.CSRBytes = g.CSRBytes()
	pt.OffsetWidth = g.OffsetWidth()
	if pt.Edges > 0 {
		pt.BytesPerEdge = float64(pt.CSRBytes) / float64(pt.Edges)
	}
	pt.BuildPeakBytes = int64(peak - baseline)
	pt.BuildPeakRatio = float64(pt.BuildPeakBytes) / float64(pt.CSRBytes)
	if pt.BuildPeakRatio > buildPeakRatioMax {
		return pt, fmt.Errorf("star n=%d: build peak heap %.0f MiB is %.3fx the %.0f MiB CSR (bound %.2fx): streaming path regressed",
			pt.N, float64(pt.BuildPeakBytes)/(1<<20), pt.BuildPeakRatio, float64(pt.CSRBytes)/(1<<20), buildPeakRatioMax)
	}

	t0 = time.Now()
	heapResults, err := giantPushSweep(g)
	pt.SweepSecondsHeap = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("star n=%d: heap sweep: %w", pt.N, err)
	}

	// Spill with a 1-byte threshold so every size takes the disk path,
	// then reopen mmap-backed and drop the heap copy before the replay.
	store, err := graph.NewStore(dir, 1)
	if err != nil {
		return pt, err
	}
	key := fmt.Sprintf("giant-star:%d", leaves)
	t0 = time.Now()
	gm, err := store.GetOrBuild(key, func() (*graph.Graph, error) { return g, nil })
	pt.SpillSeconds = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("star n=%d: spill: %w", pt.N, err)
	}
	pt.MmapBacked = gm.MmapBacked()
	if !pt.MmapBacked {
		return pt, fmt.Errorf("star n=%d: reopened graph is not mmap-backed", pt.N)
	}
	g = nil
	runtime.GC() // release the heap CSR before sweeping the mapped copy

	t0 = time.Now()
	mmapResults, err := giantPushSweep(gm)
	pt.SweepSecondsMmap = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("star n=%d: mmap sweep: %w", pt.N, err)
	}
	pt.SweepIdentical = reflect.DeepEqual(heapResults, mmapResults)
	if !pt.SweepIdentical {
		return pt, fmt.Errorf("star n=%d: mmap-backed sweep diverges from the in-memory sweep", pt.N)
	}
	pt.VmHWMBytesSoFar = vmHWMBytes()
	return pt, nil
}

// measureShardScaling times a fixed batched push sweep at GOMAXPROCS 1
// and NumCPU. On a single-core host the two coincide; the entry still
// records the reference point the next multi-core run compares against.
func measureShardScaling() *shardScaling {
	sweep := func() {
		g := rumor.Star(4096)
		factory := func(rngs []*rumor.RNG) (rumor.LaneProcess, error) {
			return rumor.NewBatchedPush(g, 0, rngs, rumor.PushOptions{})
		}
		if _, err := rumor.RunManyBatched(g, factory, 16, 0, 99); err != nil {
			panic(err)
		}
	}
	timed := func(procs int) float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		sweep() // warm the graph cache and allocator
		t0 := time.Now()
		sweep()
		return time.Since(t0).Seconds()
	}
	s := &shardScaling{
		Workload:      "RunManyBatched push star:4096 x16 trials",
		NumCPU:        runtime.NumCPU(),
		SecondsProcs1: timed(1),
		SecondsProcsN: timed(runtime.NumCPU()),
	}
	if s.SecondsProcsN > 0 {
		s.Scaling = s.SecondsProcs1 / s.SecondsProcsN
	}
	s.PR4BaselineNsOp = benchPR4Baseline("MultiTrialPushStarBatched")
	return s
}

// runGiant executes the giant-graph harness for the given sizes and
// writes the report. Any acceptance violation is returned after the
// report is written, so the JSON still records the failing measurement.
func runGiant(sizes []int, dir, out string) error {
	rep := giantReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOMEMLIMIT: os.Getenv("GOMEMLIMIT"),
	}
	var firstErr error
	for _, n := range sizes {
		pt, err := runGiantPoint(n, dir)
		rep.Giant = append(rep.Giant, pt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "giant: %v\n", err)
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		fmt.Printf("star n=%-11d csr %8.1f MiB  width %d  build %6.2fs (peak %.3fx)  spill %6.2fs  mmap sweep ok\n",
			pt.N, float64(pt.CSRBytes)/(1<<20), pt.OffsetWidth, pt.BuildSeconds, pt.BuildPeakRatio, pt.SpillSeconds)
	}
	if firstErr == nil {
		rep.ShardScaling = measureShardScaling()
		fmt.Printf("shard scaling: %.3fs @1 proc, %.3fs @%d procs (%.2fx)\n",
			rep.ShardScaling.SecondsProcs1, rep.ShardScaling.SecondsProcsN, rep.ShardScaling.NumCPU, rep.ShardScaling.Scaling)
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return firstErr
}

// parseGiantSizes parses the -giant-sizes comma list.
func parseGiantSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -giant-sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-giant-sizes is empty")
	}
	return sizes, nil
}
