// Giant-graph mode: the out-of-core acceptance harness. For each
// requested point (star sizes via -giant-sizes, arbitrary specs — random
// families included — via -giant-specs) it builds the graph through the
// streaming two-pass path, samples the build's peak heap against the
// final CSR footprint (the streaming builder's contract is peak <= ~1.1x
// the resident graph), spills the graph through the content-addressed
// disk store, reopens it mmap-backed, and replays a fixed-seed push sweep
// on both copies — the two result sets must be identical. Random specs
// build from a fixed sampler seed and spill under the seeded key, so the
// mmap replay also proves the spilled realization round-trips. Violations
// exit nonzero, so CI can run this under GOMEMLIMIT as the giant-graph
// smoke gate.
package main

import (
	"bufio"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rumor"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// giantSamplerSeed is the fixed seed every random -giant point builds
// from: the harness measures the envelope of one reproducible
// realization, not a distribution.
const giantSamplerSeed = 424242

// giantPoint is one point's measurements in the -giant report.
type giantPoint struct {
	Spec             string  `json:"spec"`
	N                int     `json:"n"`
	Edges            int64   `json:"edges"`
	CSRBytes         int64   `json:"csr_bytes"`
	OffsetWidth      int     `json:"offset_width_bytes"`
	BytesPerEdge     float64 `json:"bytes_per_edge"`
	BuildSeconds     float64 `json:"build_seconds"`
	BuildPeakBytes   int64   `json:"build_peak_heap_bytes"`
	BuildPeakRatio   float64 `json:"build_peak_ratio"` // peak heap growth / csr_bytes
	SpillSeconds     float64 `json:"spill_seconds"`    // encode + reopen
	MmapBacked       bool    `json:"mmap_backed"`
	SweepSecondsHeap float64 `json:"sweep_seconds_heap"`
	SweepSecondsMmap float64 `json:"sweep_seconds_mmap"`
	SweepIdentical   bool    `json:"sweep_identical"`
	VmHWMBytesSoFar  int64   `json:"vm_hwm_bytes_so_far,omitempty"`
}

// shardScaling records a fixed batched sweep timed at GOMAXPROCS 1 and
// NumCPU, with the BENCH_PR4 MultiTrialPushStarBatched measurement (when
// the file is present) as the cross-PR reference for the same workload
// shape. On a single-core host the measurement is skipped: the two
// timings coincide up to pool overhead, and publishing the resulting
// sub-1.0 "scaling" figure would be pure noise (BENCH_PR7.json's 0.84).
type shardScaling struct {
	Workload        string  `json:"workload"`
	Skipped         bool    `json:"skipped,omitempty"`
	Note            string  `json:"note,omitempty"`
	SecondsProcs1   float64 `json:"seconds_gomaxprocs_1,omitempty"`
	SecondsProcsN   float64 `json:"seconds_gomaxprocs_numcpu,omitempty"`
	NumCPU          int     `json:"num_cpu"`
	Scaling         float64 `json:"scaling,omitempty"` // procs1 / procsN
	PR4BaselineNsOp float64 `json:"bench_pr4_push_star_batched_ns_per_op,omitempty"`
}

// gnpSpeedup records the legacy-vs-skip-sampling comparison on a size the
// naive path can still reach: the same G(n, p) point sampled once with
// O(n²) per-pair coin flips through the legacy in-memory Builder and once
// with geometric skip-sampling through the streaming builder. At sparse p
// the expected-work gap is n²/2 flips vs ~m skips, so the speedup should
// be orders of magnitude (the acceptance floor is 10x).
type gnpSpeedup struct {
	N             int     `json:"n"`
	P             float64 `json:"p"`
	NaiveSeconds  float64 `json:"naive_per_pair_seconds"`
	StreamSeconds float64 `json:"stream_skip_seconds"`
	Speedup       float64 `json:"speedup"`
	NaiveEdges    int64   `json:"naive_edges"`
	StreamEdges   int64   `json:"stream_edges"`
}

type giantReport struct {
	Timestamp    string        `json:"timestamp"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	NumCPU       int           `json:"num_cpu"`
	GOMEMLIMIT   string        `json:"gomemlimit,omitempty"`
	Giant        []giantPoint  `json:"giant"`
	GnpSpeedup   *gnpSpeedup   `json:"gnp_speedup,omitempty"`
	ShardScaling *shardScaling `json:"shard_scaling,omitempty"`
}

// buildPeakRatioMax is the acceptance bound on streaming-build peak heap
// growth relative to the final CSR: the two-pass builder allocates the
// CSR arrays and O(1) scratch, nothing else — and the random samplers'
// auxiliary state is file-backed, so it must not show up here either.
const buildPeakRatioMax = 1.1

// sampleHeapPeak polls HeapAlloc until stop closes and reports the
// maximum observed. 10ms resolution is ample: the build's heap profile is
// two long plateaus (offsets, then offsets+neighbors), not spikes.
func sampleHeapPeak(stop <-chan struct{}, peak *uint64) {
	var ms runtime.MemStats
	for {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > *peak {
			*peak = ms.HeapAlloc
		}
		select {
		case <-stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// vmHWMBytes reads the process peak RSS from /proc/self/status (0 where
// unavailable, e.g. non-Linux).
func vmHWMBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

// giantPushSweep runs the fixed-seed truncated push sweep used for the
// heap-vs-mmap identity check. Push keeps per-lane state O(informed), so
// the sweep's own footprint stays tiny next to the graph.
func giantPushSweep(g *rumor.Graph) ([]rumor.Result, error) {
	factory := func(rngs []*rumor.RNG) (rumor.LaneProcess, error) {
		return rumor.NewBatchedPush(g, 0, rngs, rumor.PushOptions{})
	}
	// Push on a star needs Theta(n log n) rounds; 3 rounds of 2 trials
	// exercise the full draw/commit machinery and truncate deterministically.
	return rumor.RunManyBatched(g, factory, 2, 3, 12345)
}

// runGiantPoint measures one spec end to end. Random specs build from the
// fixed giantSamplerSeed and spill under graph.SeededKey, so the build is
// reproducible and the disk tier exercises the seeded key path.
func runGiantPoint(spec string, dir string) (giantPoint, error) {
	pt := giantPoint{Spec: spec}
	p, err := graph.ParseSpec(spec)
	if err != nil {
		return pt, err
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	peak := baseline
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { sampleHeapPeak(stop, &peak); close(done) }()

	t0 := time.Now()
	g, err := p.BuildSeeded(giantSamplerSeed)
	pt.BuildSeconds = time.Since(t0).Seconds()
	close(stop)
	<-done
	if err != nil {
		return pt, fmt.Errorf("%s: build: %w", spec, err)
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}

	pt.N = g.N()
	pt.Edges = int64(g.M())
	pt.CSRBytes = g.CSRBytes()
	pt.OffsetWidth = g.OffsetWidth()
	if pt.Edges > 0 {
		pt.BytesPerEdge = float64(pt.CSRBytes) / float64(pt.Edges)
	}
	pt.BuildPeakBytes = int64(peak - baseline)
	pt.BuildPeakRatio = float64(pt.BuildPeakBytes) / float64(pt.CSRBytes)
	if pt.BuildPeakRatio > buildPeakRatioMax {
		return pt, fmt.Errorf("%s: build peak heap %.0f MiB is %.3fx the %.0f MiB CSR (bound %.2fx): streaming path regressed",
			spec, float64(pt.BuildPeakBytes)/(1<<20), pt.BuildPeakRatio, float64(pt.CSRBytes)/(1<<20), buildPeakRatioMax)
	}

	t0 = time.Now()
	heapResults, err := giantPushSweep(g)
	pt.SweepSecondsHeap = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("%s: heap sweep: %w", spec, err)
	}

	// Spill with a 1-byte threshold so every size takes the disk path,
	// then reopen mmap-backed and drop the heap copy before the replay.
	store, err := graph.NewStore(dir, 1)
	if err != nil {
		return pt, err
	}
	key := "giant-" + p.Canonical()
	if p.Random() {
		key = graph.SeededKey(p.Canonical(), giantSamplerSeed)
	}
	t0 = time.Now()
	gm, err := store.GetOrBuild(key, func() (*graph.Graph, error) { return g, nil })
	pt.SpillSeconds = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("%s: spill: %w", spec, err)
	}
	pt.MmapBacked = gm.MmapBacked()
	if !pt.MmapBacked {
		return pt, fmt.Errorf("%s: reopened graph is not mmap-backed", spec)
	}
	g = nil
	runtime.GC() // release the heap CSR before sweeping the mapped copy

	t0 = time.Now()
	mmapResults, err := giantPushSweep(gm)
	pt.SweepSecondsMmap = time.Since(t0).Seconds()
	if err != nil {
		return pt, fmt.Errorf("%s: mmap sweep: %w", spec, err)
	}
	pt.SweepIdentical = reflect.DeepEqual(heapResults, mmapResults)
	if !pt.SweepIdentical {
		return pt, fmt.Errorf("%s: mmap-backed sweep diverges from the in-memory sweep", spec)
	}
	pt.VmHWMBytesSoFar = vmHWMBytes()
	return pt, nil
}

// measureGnpSpeedup times the same sparse G(n, p) point through the naive
// O(n²) per-pair formulation (the pre-streaming baseline shape, built
// through the legacy in-memory Builder) and through the streaming
// skip-sampler. Both are end-to-end graph constructions; the realizations
// differ (different draw disciplines) but the workload is identical.
func measureGnpSpeedup() (*gnpSpeedup, error) {
	const n, p, seed = 20000, 5e-4, 99
	sp := &gnpSpeedup{N: n, P: p}

	t0 := time.Now()
	b := graph.NewBuilder(n, "gnp-naive")
	s := xrand.NewStream(seed, 1, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Bernoulli(p) {
				if err := b.AddEdge(graph.Vertex(i), graph.Vertex(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	gNaive, err := b.Build()
	if err != nil {
		return nil, err
	}
	sp.NaiveSeconds = time.Since(t0).Seconds()
	sp.NaiveEdges = int64(gNaive.M())

	t0 = time.Now()
	gStream, err := graph.ErdosRenyiSeeded(n, p, seed)
	if err != nil {
		return nil, err
	}
	sp.StreamSeconds = time.Since(t0).Seconds()
	sp.StreamEdges = int64(gStream.M())
	if sp.StreamSeconds > 0 {
		sp.Speedup = sp.NaiveSeconds / sp.StreamSeconds
	}
	return sp, nil
}

// measureShardScaling times a fixed batched push sweep at GOMAXPROCS 1
// and NumCPU. On a single-core host the measurement is skipped with an
// explanatory note — timing the same single core twice measures only
// worker-pool overhead, not scaling.
func measureShardScaling() *shardScaling {
	s := &shardScaling{
		Workload: "RunManyBatched push star:4096 x16 trials",
		NumCPU:   runtime.NumCPU(),
	}
	s.PR4BaselineNsOp = benchPR4Baseline("MultiTrialPushStarBatched")
	if s.NumCPU == 1 {
		s.Skipped = true
		s.Note = "single-core host: GOMAXPROCS 1 and NumCPU coincide, so the ratio would measure pool overhead, not shard scaling; run on >= 8 cores for a meaningful figure"
		return s
	}
	sweep := func() {
		g := rumor.Star(4096)
		factory := func(rngs []*rumor.RNG) (rumor.LaneProcess, error) {
			return rumor.NewBatchedPush(g, 0, rngs, rumor.PushOptions{})
		}
		if _, err := rumor.RunManyBatched(g, factory, 16, 0, 99); err != nil {
			panic(err)
		}
	}
	timed := func(procs int) float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		sweep() // warm the graph cache and allocator
		t0 := time.Now()
		sweep()
		return time.Since(t0).Seconds()
	}
	s.SecondsProcs1 = timed(1)
	s.SecondsProcsN = timed(runtime.NumCPU())
	if s.SecondsProcsN > 0 {
		s.Scaling = s.SecondsProcs1 / s.SecondsProcsN
	}
	return s
}

// runGiant executes the giant-graph harness for the given specs and
// writes the report. Any acceptance violation is returned after the
// report is written, so the JSON still records the failing measurement.
func runGiant(specs []string, dir, out string) error {
	rep := giantReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOMEMLIMIT: os.Getenv("GOMEMLIMIT"),
	}
	var firstErr error
	for _, spec := range specs {
		pt, err := runGiantPoint(spec, dir)
		rep.Giant = append(rep.Giant, pt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "giant: %v\n", err)
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		fmt.Printf("%-24s n=%-11d csr %8.1f MiB  width %d  build %6.2fs (peak %.3fx)  spill %6.2fs  mmap sweep ok\n",
			spec, pt.N, float64(pt.CSRBytes)/(1<<20), pt.OffsetWidth, pt.BuildSeconds, pt.BuildPeakRatio, pt.SpillSeconds)
	}
	if firstErr == nil {
		sp, err := measureGnpSpeedup()
		if err != nil {
			firstErr = err
		} else {
			rep.GnpSpeedup = sp
			fmt.Printf("gnp skip-sampling: naive per-pair %.3fs vs stream %.4fs (%.0fx) at n=%d p=%g\n",
				sp.NaiveSeconds, sp.StreamSeconds, sp.Speedup, sp.N, sp.P)
		}
	}
	if firstErr == nil {
		rep.ShardScaling = measureShardScaling()
		if rep.ShardScaling.Skipped {
			fmt.Printf("shard scaling: skipped (%s)\n", rep.ShardScaling.Note)
		} else {
			fmt.Printf("shard scaling: %.3fs @1 proc, %.3fs @%d procs (%.2fx)\n",
				rep.ShardScaling.SecondsProcs1, rep.ShardScaling.SecondsProcsN, rep.ShardScaling.NumCPU, rep.ShardScaling.Scaling)
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return firstErr
}

// parseGiantSizes parses the -giant-sizes comma list into star specs.
func parseGiantSizes(s string) ([]string, error) {
	var specs []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -giant-sizes entry %q", f)
		}
		specs = append(specs, fmt.Sprintf("star:%d", n))
	}
	return specs, nil
}

// parseGiantSpecs parses the -giant-specs list: semicolon-separated graph
// specs (specs themselves contain commas), validated and canonicalized.
func parseGiantSpecs(s string) ([]string, error) {
	var specs []string
	for _, f := range strings.Split(s, ";") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p, err := graph.ParseSpec(f)
		if err != nil {
			return nil, fmt.Errorf("bad -giant-specs entry %q: %w", f, err)
		}
		specs = append(specs, p.Canonical())
	}
	return specs, nil
}
