package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestBenchWritesJSON runs the bench command at a tiny benchtime and
// checks the JSON report structure (including the five-protocol engine
// cross-check every bench run starts with; CI additionally runs the
// dedicated `go run ./cmd/bench -smoke` step).
func TestBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	cmd := exec.Command("go", "run", ".", "-out", out, "-benchtime", "1ms")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("bench run failed: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Benchmarks) < 6 {
		t.Fatalf("expected >= 6 benchmarks, got %d", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Errorf("benchmark %s has non-positive ns/op", b.Name)
		}
	}
}
