package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"fig1a-star", "thm1-regular", "ablations", "multirumor", "async"} {
		if !strings.Contains(s, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestSingleExperimentSmall(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "thm1-regular", "-scale", "small", "-trials", "2", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "### thm1-regular") || !strings.Contains(s, "ratio band") {
		t.Errorf("experiment output malformed:\n%s", s)
	}
}

func TestWritesFilesAndCSV(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "out.md")
	csvDir := filepath.Join(dir, "csv")
	var out strings.Builder
	err := run([]string{
		"-exp", "fairness", "-scale", "small", "-trials", "2",
		"-out", md, "-csvdir", csvDir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "### fairness") {
		t.Error("markdown file missing experiment")
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fairness.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "unknown-exp"},
		{"-scale", "tiny"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
