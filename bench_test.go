package rumor_test

// Benchmark harness: one benchmark per experiment in EXPERIMENTS.md (the
// paper's Fig. 1 families, the theorem-level claims, and the extension
// studies), plus engine micro-benchmarks.
//
// The experiment benchmarks execute the same code path that regenerates the
// EXPERIMENTS.md tables, at reduced scale so `go test -bench=.` stays
// laptop-friendly; run `go run ./cmd/experiments` for the full-scale sweep.
// Each reports broadcast rounds as custom metrics alongside ns/op.

import (
	"fmt"
	"strconv"
	"testing"

	"rumor"
)

// benchExperiment runs one registered experiment at small scale per
// iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := rumor.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := spec.Run(rumor.ExperimentConfig{
			Seed:   uint64(i + 1),
			Scale:  rumor.ScaleSmall,
			Trials: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1Fig1aStar(b *testing.B)        { benchExperiment(b, "fig1a-star") }
func BenchmarkE2Fig1bDoubleStar(b *testing.B)  { benchExperiment(b, "fig1b-doublestar") }
func BenchmarkE3Fig1cHeavyTree(b *testing.B)   { benchExperiment(b, "fig1c-heavytree") }
func BenchmarkE4Fig1dSiameseTree(b *testing.B) { benchExperiment(b, "fig1d-siamese") }
func BenchmarkE5Fig1eCycleStars(b *testing.B)  { benchExperiment(b, "fig1e-cyclestars") }
func BenchmarkE6Thm1Regular(b *testing.B)      { benchExperiment(b, "thm1-regular") }
func BenchmarkE7Thm23MeetVsVisit(b *testing.B) { benchExperiment(b, "thm23-meetx") }
func BenchmarkE8LogLowerBounds(b *testing.B)   { benchExperiment(b, "lb-log") }
func BenchmarkE9Fairness(b *testing.B)         { benchExperiment(b, "fairness") }
func BenchmarkE10Hybrid(b *testing.B)          { benchExperiment(b, "hybrid") }
func BenchmarkE11MultiRumor(b *testing.B)      { benchExperiment(b, "multirumor") }
func BenchmarkE12Async(b *testing.B)           { benchExperiment(b, "async") }
func BenchmarkE13MeetingBound(b *testing.B)    { benchExperiment(b, "meeting-bound") }
func BenchmarkE14Social(b *testing.B)          { benchExperiment(b, "social") }
func BenchmarkE15Ablations(b *testing.B)       { benchExperiment(b, "ablations") }

// --- protocol engine micro-benchmarks -------------------------------------

// benchProtocolRun measures one full broadcast per iteration and reports
// the mean rounds as a custom metric.
func benchProtocolRun(b *testing.B, mk func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error), g *rumor.Graph) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		p, err := mk(g, rumor.NewRNG(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		res := rumor.Run(g, p, 0)
		if !res.Completed {
			b.Fatal("incomplete run")
		}
		totalRounds += res.Rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/broadcast")
}

func BenchmarkProtocolPushHypercube(b *testing.B) {
	g := rumor.Hypercube(10)
	benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewPush(g, 0, rng, rumor.PushOptions{})
	}, g)
}

func BenchmarkProtocolPushPullHypercube(b *testing.B) {
	g := rumor.Hypercube(10)
	benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewPushPull(g, 0, rng, rumor.PushPullOptions{})
	}, g)
}

func BenchmarkProtocolVisitExchangeHypercube(b *testing.B) {
	g := rumor.Hypercube(10)
	benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewVisitExchange(g, 0, rng, rumor.AgentOptions{})
	}, g)
}

func BenchmarkProtocolMeetExchangeHypercube(b *testing.B) {
	g := rumor.Hypercube(10)
	benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewMeetExchange(g, 0, rng, rumor.AgentOptions{})
	}, g)
}

func BenchmarkProtocolHybridHypercube(b *testing.B) {
	g := rumor.Hypercube(10)
	benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewHybrid(g, 0, rng, rumor.AgentOptions{})
	}, g)
}

// BenchmarkVisitExchangeAgentStepThroughput measures raw agent-step cost:
// agent-steps per second on a large regular graph.
func BenchmarkVisitExchangeAgentStepThroughput(b *testing.B) {
	g := rumor.Hypercube(14) // n = 16384
	p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(1), rumor.AgentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
	b.ReportMetric(float64(g.N()), "agent-steps/op")
}

// BenchmarkCoupledRun measures the Section 5 coupled execution (both
// processes plus C-counter maintenance).
func BenchmarkCoupledRun(b *testing.B) {
	g := rumor.Hypercube(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rumor.RunCoupled(g, 0, rumor.NewRNG(uint64(i+1)), rumor.CouplingConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.VerifyLemma13(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedPushPull measures the goroutine-per-node runtime
// (barrier synchronization dominates).
func BenchmarkDistributedPushPull(b *testing.B) {
	g := rumor.Hypercube(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rumor.RunDistributed(g, 0, rumor.DistConfig{
			Protocol: rumor.DistPushPull,
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// --- graph generator benchmarks -------------------------------------------

func BenchmarkGenerateRandomRegular(b *testing.B) {
	for _, size := range []int{1024, 4096} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := rumor.RandomRegular(size, 16, rumor.NewRNG(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				if g.N() != size {
					b.Fatal("bad graph")
				}
			}
		})
	}
}

func BenchmarkGenerateHeavyTree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := rumor.HeavyBinaryTree(11) // n = 2047, leaf clique ~ 2^20/2 edges
		if g.N() != 2047 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkStationaryPlacement measures agent placement cost in isolation
// (binary search over the CSR offsets per agent).
func BenchmarkStationaryPlacement(b *testing.B) {
	g := rumor.Hypercube(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(uint64(i+1)), rumor.AgentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// Example of scaling behavior: push broadcast across graph sizes, reported
// as rounds so the log n growth is visible in benchmark output.
func BenchmarkPushCompleteGraphScaling(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := rumor.Complete(n)
			benchProtocolRun(b, func(g *rumor.Graph, rng *rumor.RNG) (rumor.Process, error) {
				return rumor.NewPush(g, 0, rng, rumor.PushOptions{})
			}, g)
		})
	}
}
