module rumor

go 1.24
