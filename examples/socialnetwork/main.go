// Socialnetwork compares all protocols on a power-law (Chung-Lu) graph —
// the kind of topology the rumor-spreading literature motivates with social
// networks — and shows that the hybrid protocol inherits the best of both
// mechanisms on a realistic, heavy-tailed degree distribution.
//
//	go run ./examples/socialnetwork
//	go run ./examples/socialnetwork -n 4000 -beta 2.3
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"rumor"
)

func main() {
	n := flag.Int("n", 2000, "number of vertices")
	beta := flag.Float64("beta", 2.5, "power-law exponent (must be > 2)")
	avgDeg := flag.Float64("avgdeg", 10, "target average degree")
	trials := flag.Int("trials", 10, "trials per protocol")
	seed := flag.Uint64("seed", 42, "master seed")
	flag.Parse()

	raw, err := rumor.ChungLu(*n, *beta, *avgDeg, rumor.NewRNG(*seed))
	if err != nil {
		log.Fatal(err)
	}
	// Chung-Lu samples can leave a few low-weight vertices isolated;
	// broadcast runs on the giant component.
	g, _ := rumor.GiantComponent(raw)
	fmt.Printf("Chung-Lu graph: sampled n=%d; giant component n=%d, m=%d, avg deg %.1f, max deg %d\n",
		raw.N(), g.N(), g.M(), g.AvgDegree(), g.MaxDegree())

	// Source: a median-degree vertex (a "typical user" posting a rumor).
	src := medianDegreeVertex(g)
	fmt.Printf("source: vertex %d (degree %d, a typical user)\n\n", src, g.Degree(src))

	fmt.Printf("%-16s %10s %10s %12s\n", "protocol", "mean", "max", "msgs/round")
	for _, name := range []string{"push", "push-pull", "visit-exchange", "meet-exchange", "ppull+visitx"} {
		name := name
		results, err := rumor.RunMany(g, func(rng *rumor.RNG) (rumor.Process, error) {
			switch name {
			case "push":
				return rumor.NewPush(g, src, rng, rumor.PushOptions{})
			case "push-pull":
				return rumor.NewPushPull(g, src, rng, rumor.PushPullOptions{})
			case "visit-exchange":
				return rumor.NewVisitExchange(g, src, rng, rumor.AgentOptions{})
			case "meet-exchange":
				return rumor.NewMeetExchange(g, src, rng, rumor.AgentOptions{})
			default:
				return rumor.NewHybrid(g, src, rng, rumor.AgentOptions{})
			}
		}, *trials, 0, *seed)
		if err != nil {
			log.Fatal(err)
		}
		var mean, msgs float64
		maxR := 0
		for _, r := range results {
			if !r.Completed {
				log.Fatalf("%s did not complete in %d rounds", name, r.Rounds)
			}
			mean += float64(r.Rounds)
			msgs += float64(r.Messages) / float64(r.Rounds)
			if r.Rounds > maxR {
				maxR = r.Rounds
			}
		}
		k := float64(len(results))
		fmt.Printf("%-16s %10.1f %10d %12.0f\n", name, mean/k, maxR, msgs/k)
	}
	fmt.Println("\nOn power-law graphs push-pull exploits hubs (the classic social-network")
	fmt.Println("result), the agent protocols pay for the periphery's thin bandwidth, and")
	fmt.Println("the hybrid tracks the best mechanism — matching the paper's Section 1 thesis.")
}

func medianDegreeVertex(g *rumor.Graph) rumor.Vertex {
	type dv struct {
		d int
		v rumor.Vertex
	}
	all := make([]dv, g.N())
	for v := 0; v < g.N(); v++ {
		all[v] = dv{g.Degree(rumor.Vertex(v)), rumor.Vertex(v)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	return all[len(all)/2].v
}
