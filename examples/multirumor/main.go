// Multirumor demonstrates the setting that motivates the paper's
// stationary-start assumption (Section 3): a fleet of agents on perpetual
// random walks disseminates a stream of rumors, injected over time at
// different sources. Per-rumor latency matches the single-rumor case and
// the token traffic does not grow with the number of rumors in flight —
// agents are unlabeled counters, so the bandwidth is shared for free.
//
//	go run ./examples/multirumor
//	go run ./examples/multirumor -rumors 64 -spacing 3
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"rumor"
)

func main() {
	dim := flag.Int("dim", 9, "hypercube dimension (n = 2^dim)")
	count := flag.Int("rumors", 32, "number of rumors (1..64)")
	spacing := flag.Int("spacing", 5, "rounds between injections")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	g := rumor.Hypercube(*dim)
	fmt.Printf("hypercube(%d): n=%d, |A|=%d agents on perpetual walks\n\n", *dim, g.N(), g.N())

	// Baseline: one rumor alone.
	single, err := rumor.RunMultiRumor(g, []rumor.Rumor{{Source: 0}}, rumor.NewRNG(*seed), rumor.AgentOptions{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single rumor baseline: %d rounds, %d agent-messages/round\n\n",
		single.BroadcastRounds[0], single.Messages/int64(single.Rounds))

	// The stream: rumors injected `spacing` rounds apart at scattered
	// sources.
	rumors := make([]rumor.Rumor, *count)
	for i := range rumors {
		rumors[i] = rumor.Rumor{
			Source: rumor.Vertex((i * 97) % g.N()),
			Round:  i * *spacing,
		}
	}
	res, err := rumor.RunMultiRumor(g, rumors, rumor.NewRNG(*seed+1), rumor.AgentOptions{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("incomplete after %d rounds", res.Rounds)
	}

	lat := append([]int(nil), res.BroadcastRounds...)
	sort.Ints(lat)
	sum := 0
	for _, v := range lat {
		sum += v
	}
	fmt.Printf("%d rumors injected every %d rounds:\n", *count, *spacing)
	fmt.Printf("  per-rumor broadcast rounds: mean %.1f  min %d  median %d  max %d\n",
		float64(sum)/float64(len(lat)), lat[0], lat[len(lat)/2], lat[len(lat)-1])
	fmt.Printf("  total simulated rounds:     %d\n", res.Rounds)
	fmt.Printf("  agent messages per round:   %d (unchanged — rumors share the walks)\n",
		res.Messages/int64(res.Rounds))
	fmt.Printf("  vs single-rumor baseline:   %.2fx per-rumor latency\n",
		float64(sum)/float64(len(lat))/float64(single.BroadcastRounds[0]))
	fmt.Println("\nAgents need not be labeled: each message is a token count plus payload,")
	fmt.Println("so a linear number of agents serves an unbounded rumor stream (Section 3).")
}
