// Quickstart: run all four of the paper's protocols (plus the hybrid) on
// one graph and print their broadcast times side by side.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -graph doublestar:512 -trials 10
package main

import (
	"flag"
	"fmt"
	"log"

	"rumor"
)

func main() {
	graphSpec := flag.String("graph", "star:1024", "graph family spec")
	trials := flag.Int("trials", 5, "trials per protocol")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	g, err := buildGraph(*graphSpec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	src := rumor.Vertex(0)
	if leaf, ok := g.Landmark("leaf"); ok {
		src = leaf
	}
	fmt.Printf("graph %s: n=%d, m=%d, source=%d\n\n", g.Name(), g.N(), g.M(), src)
	fmt.Printf("%-16s %10s %10s %10s\n", "protocol", "mean", "min", "max")

	type builder struct {
		name string
		mk   func(rng *rumor.RNG) (rumor.Process, error)
	}
	builders := []builder{
		{"push", func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewPush(g, src, rng, rumor.PushOptions{})
		}},
		{"push-pull", func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewPushPull(g, src, rng, rumor.PushPullOptions{})
		}},
		{"visit-exchange", func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewVisitExchange(g, src, rng, rumor.AgentOptions{})
		}},
		{"meet-exchange", func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewMeetExchange(g, src, rng, rumor.AgentOptions{})
		}},
		{"ppull+visitx", func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewHybrid(g, src, rng, rumor.AgentOptions{})
		}},
	}
	for _, b := range builders {
		results, err := rumor.RunMany(g, b.mk, *trials, 0, *seed)
		if err != nil {
			log.Fatal(err)
		}
		mean, minR, maxR := summarize(results)
		fmt.Printf("%-16s %10.1f %10d %10d\n", b.name, mean, minR, maxR)
	}
	fmt.Println("\nOn the star (Lemma 2): push needs Θ(n log n) rounds while the")
	fmt.Println("agent-based protocols finish in O(log n) — try -graph doublestar:512")
	fmt.Println("to see push-pull lose too (Lemma 3).")
}

func buildGraph(spec string, seed uint64) (*rumor.Graph, error) {
	// The examples keep their own tiny spec parser on purpose: it shows how
	// little API a user needs. The cmd/ tools use the full FromSpec grammar.
	var leaves int
	if n, err := fmt.Sscanf(spec, "star:%d", &leaves); n == 1 && err == nil {
		return rumor.Star(leaves), nil
	}
	if n, err := fmt.Sscanf(spec, "doublestar:%d", &leaves); n == 1 && err == nil {
		return rumor.DoubleStar(leaves), nil
	}
	var dim int
	if n, err := fmt.Sscanf(spec, "hypercube:%d", &dim); n == 1 && err == nil {
		return rumor.Hypercube(dim), nil
	}
	var rn, rd int
	if n, err := fmt.Sscanf(spec, "randreg:%d,%d", &rn, &rd); n == 2 && err == nil {
		return rumor.RandomRegularConnected(rn, rd, rumor.NewRNG(seed))
	}
	return nil, fmt.Errorf("unsupported spec %q (star:N, doublestar:N, hypercube:D, randreg:N,D)", spec)
}

func summarize(results []rumor.Result) (mean float64, minR, maxR int) {
	minR, maxR = results[0].Rounds, results[0].Rounds
	sum := 0
	for _, r := range results {
		sum += r.Rounds
		if r.Rounds < minR {
			minR = r.Rounds
		}
		if r.Rounds > maxR {
			maxR = r.Rounds
		}
	}
	return float64(sum) / float64(len(results)), minR, maxR
}
