// Doublestar reproduces the paper's motivating separation (Fig. 1(b),
// Lemma 3) and its explanation: on the double star, push-pull takes Ω(n)
// rounds because it almost never selects the center-center bridge, while
// the agent protocols cross it at a constant per-round rate ("locally fair
// bandwidth use", Section 1). The example prints both the broadcast times
// and the measured bridge utilization.
//
//	go run ./examples/doublestar
//	go run ./examples/doublestar -leaves 2048
package main

import (
	"flag"
	"fmt"
	"log"

	"rumor"
)

func main() {
	leaves := flag.Int("leaves", 512, "leaves per star")
	trials := flag.Int("trials", 10, "trials per protocol")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	g := rumor.DoubleStar(*leaves)
	a, _ := g.Landmark("centerA")
	b, _ := g.Landmark("centerB")
	fmt.Printf("double star: n=%d, m=%d, bridge = edge {%d,%d}\n\n", g.N(), g.M(), a, b)

	// Part 1: broadcast times (Lemma 3).
	fmt.Println("broadcast times from centerA:")
	for _, p := range []string{"push-pull", "visit-exchange", "meet-exchange"} {
		p := p
		results, err := rumor.RunMany(g, func(rng *rumor.RNG) (rumor.Process, error) {
			switch p {
			case "push-pull":
				return rumor.NewPushPull(g, a, rng, rumor.PushPullOptions{})
			case "visit-exchange":
				return rumor.NewVisitExchange(g, a, rng, rumor.AgentOptions{})
			default:
				return rumor.NewMeetExchange(g, a, rng, rumor.AgentOptions{})
			}
		}, *trials, 0, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0
		for _, r := range results {
			sum += r.Rounds
		}
		fmt.Printf("  %-15s mean %8.1f rounds   (paper: %s)\n",
			p, float64(sum)/float64(len(results)), claim(p))
	}

	// Part 2: why — bridge utilization over a fixed window.
	const window = 400
	fmt.Printf("\nbridge utilization over %d rounds:\n", window)

	ppullUsage := rumor.NewEdgeUsage(g)
	pp, err := rumor.NewPushPull(g, a, rumor.NewRNG(*seed), rumor.PushPullOptions{Observer: ppullUsage.Observe})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < window; i++ {
		pp.Step()
	}

	visitUsage := rumor.NewEdgeUsage(g)
	vx, err := rumor.NewVisitExchange(g, a, rumor.NewRNG(*seed), rumor.AgentOptions{Observer: visitUsage.Observe})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < window; i++ {
		vx.Step()
	}

	fmt.Printf("  push-pull:      %6d crossings (%.4f per round) — selected w.p. Θ(1/n)\n",
		ppullUsage.Count(a, b), float64(ppullUsage.Count(a, b))/window)
	fmt.Printf("  visit-exchange: %6d crossings (%.4f per round) — every edge at rate 2|A|/2|E| = Θ(1)\n",
		visitUsage.Count(a, b), float64(visitUsage.Count(a, b))/window)
	fmt.Printf("\nfairness (all edges): push-pull %s\n", ppullUsage.Fairness())
	fmt.Printf("fairness (all edges): visitx    %s\n", visitUsage.Fairness())
	fmt.Println("\nThe starved bridge is exactly why E[T_ppull] = Ω(n) while")
	fmt.Println("T_visitx = O(log n) w.h.p. (Lemma 3).")
}

func claim(p string) string {
	switch p {
	case "push-pull":
		return "Ω(n) in expectation"
	default:
		return "O(log n) w.h.p."
	}
}
