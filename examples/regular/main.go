// Regular demonstrates Theorem 1 empirically: on regular graphs with
// degree Ω(log n), push and visit-exchange have the same broadcast time up
// to constant factors — including on "slow" regular graphs where both are
// polynomial. It also runs the coupled execution of Section 5 and checks
// the Lemma 13 invariant τ_u ≤ C_u(t_u) exactly.
//
//	go run ./examples/regular
package main

import (
	"fmt"
	"log"
	"math"

	"rumor"
)

func main() {
	fmt.Println("Theorem 1: T_push ≍ T_visitx on regular graphs (d = Ω(log n))")
	fmt.Printf("\n%-22s %6s %4s %12s %12s %8s\n", "graph", "n", "d", "T_push", "T_visitx", "ratio")

	type family struct {
		name string
		g    *rumor.Graph
		d    int
	}
	rng := rumor.NewRNG(7)
	var families []family
	for _, dim := range []int{7, 8, 9, 10} {
		g := rumor.Hypercube(dim)
		families = append(families, family{g.Name(), g, dim})
	}
	for _, n := range []int{512, 1024, 2048} {
		d := 2 * int(math.Ceil(math.Log(float64(n))))
		g, err := rumor.RandomRegularConnected(n, d, rng)
		if err != nil {
			log.Fatal(err)
		}
		families = append(families, family{g.Name(), g, d})
	}
	// The slow regular family: a ring of cliques where both protocols need
	// Θ(n/d) rounds — the constant-factor relation must hold here too.
	for _, n := range []int{512, 1024} {
		s := 2 * int(math.Ceil(math.Log(float64(n))))
		g := rumor.RingOfCliques(n/s, s)
		families = append(families, family{g.Name(), g, s + 1})
	}

	const trials = 10
	for _, f := range families {
		push := meanRounds(f.g, trials, 11, func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewPush(f.g, 0, rng, rumor.PushOptions{})
		})
		visitx := meanRounds(f.g, trials, 13, func(rng *rumor.RNG) (rumor.Process, error) {
			return rumor.NewVisitExchange(f.g, 0, rng, rumor.AgentOptions{})
		})
		fmt.Printf("%-22s %6d %4d %12.1f %12.1f %8.2f\n",
			f.name, f.g.N(), f.d, push, visitx, push/visitx)
	}

	fmt.Println("\nThe ratio stays in a constant band even as the absolute times range")
	fmt.Println("from ~10 rounds (hypercube) to hundreds (ring of cliques).")

	// Coupled run: the proof machinery of Section 5, executable.
	fmt.Println("\nSection 5 coupling on hypercube(10): verifying Lemma 13 (τ_u ≤ C_u(t_u))...")
	g := rumor.Hypercube(10)
	res, err := rumor.RunCoupled(g, 0, rumor.NewRNG(99), rumor.CouplingConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.VerifyLemma13(); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for u := range res.C {
		if r := float64(res.Tau[u]) / float64(res.C[u]+1); r > worst {
			worst = r
		}
	}
	fmt.Printf("holds for all %d vertices; coupled times T_push=%d, T_visitx=%d; max τ_u/C_u = %.2f\n",
		g.N(), res.TPush, res.TVisitx, worst)
}

func meanRounds(g *rumor.Graph, trials int, seed uint64, mk func(*rumor.RNG) (rumor.Process, error)) float64 {
	results, err := rumor.RunMany(g, mk, trials, 0, seed)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0
	for _, r := range results {
		sum += r.Rounds
	}
	return float64(sum) / float64(len(results))
}
