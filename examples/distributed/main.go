// Distributed runs push-pull as an actual message-passing system — one
// goroutine per vertex, mailbox transport, barrier-synchronized rounds —
// and cross-checks its broadcast times against the array simulator. The
// outcome is deterministic for a fixed seed even though the goroutines
// interleave arbitrarily.
//
//	go run ./examples/distributed
//	go run ./examples/distributed -graph randreg:1024,14 -protocol push
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rumor"
)

func main() {
	spec := flag.String("graph", "hypercube:9", "hypercube:D or randreg:N,D")
	protocol := flag.String("protocol", "push-pull", "push | push-pull")
	trials := flag.Int("trials", 5, "distributed trials")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	g, err := buildGraph(*spec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var proto = rumor.DistPushPull
	if *protocol == "push" {
		proto = rumor.DistPush
	} else if *protocol != "push-pull" {
		log.Fatalf("unknown protocol %q", *protocol)
	}
	fmt.Printf("graph %s: n=%d, m=%d — spawning %d node goroutines per trial\n\n",
		g.Name(), g.N(), g.M(), g.N())

	fmt.Printf("%-8s %8s %10s %12s %10s\n", "trial", "rounds", "messages", "msgs/round", "wall")
	sumRounds := 0
	for i := 0; i < *trials; i++ {
		start := time.Now()
		res, err := rumor.RunDistributed(g, 0, rumor.DistConfig{
			Protocol: proto,
			Seed:     rumor.DeriveSeed(*seed, i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("trial %d incomplete", i)
		}
		sumRounds += res.Rounds
		fmt.Printf("%-8d %8d %10d %12d %10v\n",
			i, res.Rounds, res.Messages, res.Messages/int64(res.Rounds),
			time.Since(start).Round(time.Millisecond))
	}
	distMean := float64(sumRounds) / float64(*trials)

	// Cross-check against the array simulator.
	simResults, err := rumor.RunMany(g, func(rng *rumor.RNG) (rumor.Process, error) {
		if proto == rumor.DistPush {
			return rumor.NewPush(g, 0, rng, rumor.PushOptions{})
		}
		return rumor.NewPushPull(g, 0, rng, rumor.PushPullOptions{})
	}, *trials, 0, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	simSum := 0
	for _, r := range simResults {
		simSum += r.Rounds
	}
	simMean := float64(simSum) / float64(len(simResults))
	fmt.Printf("\nmean rounds: distributed %.1f vs simulator %.1f — same protocol, two runtimes\n",
		distMean, simMean)

	// Visit-exchange over the same runtime: agents travel as token
	// messages between node goroutines (the paper's Section 1 remark that
	// agents are "simply tokens passed between nodes", made literal).
	fmt.Println("\nvisit-exchange with agents as token messages:")
	sum := 0
	for i := 0; i < *trials; i++ {
		res, err := rumor.RunDistributedVisitExchange(g, 0, rumor.DistAgentConfig{
			Seed: rumor.DeriveSeed(*seed, 100+i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("trial %d incomplete", i)
		}
		sum += res.Rounds
		fmt.Printf("  trial %d: %d rounds, %d token messages\n", i, res.Rounds, res.Messages)
	}
	fmt.Printf("  mean %.1f rounds with |A| = n tokens\n", float64(sum)/float64(*trials))
}

func buildGraph(spec string, seed uint64) (*rumor.Graph, error) {
	var dim, n, d int
	if cnt, err := fmt.Sscanf(spec, "hypercube:%d", &dim); cnt == 1 && err == nil {
		return rumor.Hypercube(dim), nil
	}
	if cnt, err := fmt.Sscanf(spec, "randreg:%d,%d", &n, &d); cnt == 2 && err == nil {
		return rumor.RandomRegularConnected(n, d, rumor.NewRNG(seed))
	}
	return nil, fmt.Errorf("unsupported spec %q", spec)
}
