// Package rumor is a simulation library for randomized information
// dissemination in networks, reproducing "How to Spread a Rumor: Call Your
// Neighbors or Take a Walk?" (Giakkoupis, Mallmann-Trenn, Saribekyan;
// PODC 2019).
//
// It implements the paper's four protocols — push, push-pull,
// visit-exchange, and meet-exchange — with exact synchronous-round
// semantics, every graph family from the paper's Figure 1, the coupling
// machinery behind its main theorem, a goroutine-per-node distributed
// runtime, and an experiment harness that regenerates every figure and
// theorem-level claim as a measured table.
//
// Quick start:
//
//	g := rumor.Star(1024)
//	rng := rumor.NewRNG(42)
//	p, err := rumor.NewVisitExchange(g, 1, rng, rumor.AgentOptions{})
//	if err != nil { ... }
//	res := rumor.Run(g, p, 0)
//	fmt.Println(res.Rounds) // O(log n) w.h.p. (Lemma 2c)
//
// The package is a facade: the implementation lives in internal/ packages
// (graph, core, agents, coupling, experiment, distnet, trace), and the
// exported names here are aliases and thin wrappers over them.
package rumor

import (
	"rumor/internal/async"
	"rumor/internal/core"
	"rumor/internal/coupling"
	"rumor/internal/distnet"
	"rumor/internal/experiment"
	"rumor/internal/graph"
	"rumor/internal/trace"
	"rumor/internal/xrand"
)

// RNG is the deterministic random number generator used throughout the
// library. Identical seeds reproduce identical runs.
type RNG = xrand.RNG

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// DeriveSeed returns the i-th child seed of seed, for spawning independent
// trial streams.
func DeriveSeed(seed uint64, i int) uint64 { return xrand.Derive(seed, i) }

// Graph is an immutable simple undirected graph in CSR form.
type Graph = graph.Graph

// Vertex identifies a vertex; vertices are dense in [0, N()).
type Vertex = graph.Vertex

// Graph generators for every family used in the paper.
var (
	// Star returns the star S_n of Fig. 1(a) with the given number of leaves.
	Star = graph.Star
	// DoubleStar returns the double star S²_n of Fig. 1(b).
	DoubleStar = graph.DoubleStar
	// HeavyBinaryTree returns the heavy binary tree B_n of Fig. 1(c).
	HeavyBinaryTree = graph.HeavyBinaryTree
	// SiameseHeavyTree returns the Siamese heavy binary tree D_n of Fig. 1(d).
	SiameseHeavyTree = graph.SiameseHeavyTree
	// CycleStarsCliques returns the cycle-of-stars-of-cliques of Fig. 1(e).
	CycleStarsCliques = graph.CycleStarsCliques
	// Complete returns the complete graph K_n.
	Complete = graph.Complete
	// Cycle returns the n-cycle.
	Cycle = graph.Cycle
	// Path returns the n-vertex path.
	Path = graph.Path
	// BinaryTree returns a complete binary tree.
	BinaryTree = graph.BinaryTree
	// Hypercube returns the dim-dimensional hypercube (d = log2 n regular).
	Hypercube = graph.Hypercube
	// Torus2D returns the rows×cols torus (4-regular).
	Torus2D = graph.Torus2D
	// Grid2D returns the rows×cols grid.
	Grid2D = graph.Grid2D
	// RingOfCliques returns k cliques of size s joined in a ring by perfect
	// matchings ((s+1)-regular).
	RingOfCliques = graph.RingOfCliques
	// CliquePath returns the paper's "path of d-cliques" (broadcast Ω(n)).
	CliquePath = graph.CliquePath
	// RandomRegular samples a random d-regular graph.
	RandomRegular = graph.RandomRegular
	// RandomRegularConnected retries RandomRegular until connected.
	RandomRegularConnected = graph.RandomRegularConnected
	// ErdosRenyi samples G(n, p).
	ErdosRenyi = graph.ErdosRenyi
	// ChungLu samples a power-law expected-degree graph.
	ChungLu = graph.ChungLu
	// BarabasiAlbert samples a preferential-attachment graph (the
	// social-network model of [12, 17]).
	BarabasiAlbert = graph.BarabasiAlbert
	// DecodeGraph parses a graph in the text format written by
	// (*Graph).Encode.
	DecodeGraph = graph.Decode
)

// Graph algorithms.
var (
	// BFS returns BFS distances from a source.
	BFS = graph.BFS
	// IsConnected reports graph connectivity.
	IsConnected = graph.IsConnected
	// IsBipartite reports whether the graph is 2-colorable.
	IsBipartite = graph.IsBipartite
	// Diameter returns the exact diameter (all-pairs BFS).
	Diameter = graph.Diameter
	// DiameterEstimate returns the double-sweep diameter lower bound.
	DiameterEstimate = graph.DiameterEstimate
	// GiantComponent extracts the largest connected component (with a
	// new-to-old vertex mapping) from a possibly disconnected graph.
	GiantComponent = graph.GiantComponent
)

// Process is one protocol instance (see core.Process for the contract).
type Process = core.Process

// Result records one completed or cut-off run.
type Result = core.Result

// Protocol options.
type (
	// PushOptions configures the push protocol.
	PushOptions = core.PushOptions
	// PushPullOptions configures the push-pull protocol.
	PushPullOptions = core.PushPullOptions
	// AgentOptions configures visit-exchange, meet-exchange, and the hybrid.
	AgentOptions = core.AgentOptions
	// MoveObserver receives every neighbor call or agent traversal.
	MoveObserver = core.MoveObserver
)

// Laziness policy values for AgentOptions.Lazy.
const (
	// LazyAuto uses lazy walks exactly on bipartite graphs (the paper's
	// convention for meet-exchange).
	LazyAuto = core.LazyAuto
	// LazyOff forces simple walks.
	LazyOff = core.LazyOff
	// LazyOn forces lazy walks.
	LazyOn = core.LazyOn
)

// Protocol constructors.
var (
	// NewPush builds the push protocol of Section 3.
	NewPush = core.NewPush
	// NewPushPull builds the push-pull protocol of Section 3.
	NewPushPull = core.NewPushPull
	// NewVisitExchange builds the visit-exchange protocol of Section 3.
	NewVisitExchange = core.NewVisitExchange
	// NewMeetExchange builds the meet-exchange protocol of Section 3.
	NewMeetExchange = core.NewMeetExchange
	// NewHybrid builds the combined push-pull + visit-exchange protocol.
	NewHybrid = core.NewHybrid
	// Run drives a Process to completion (or a round bound).
	Run = core.Run
	// RunMany executes independent trials in parallel.
	RunMany = core.RunMany
	// AgentCount converts an agent density α into |A|.
	AgentCount = core.AgentCount
)

// Lane-based multi-trial execution: K >= 1 trials of a protocol stepped in
// lockstep by one fused engine, bit-identical to RunMany for the same
// seed. Every protocol has a fused bundle; a serial Process runs as the
// K = 1 lane of the same driver.
type (
	// LaneProcess bundles K independent trials of one protocol.
	LaneProcess = core.LaneProcess
	// LaneFactory builds a bundle from per-trial RNGs.
	LaneFactory = core.LaneFactory
	// BatchedProcess is LaneProcess under its historical name.
	BatchedProcess = core.BatchedProcess
	// BatchedFactory is LaneFactory under its historical name.
	BatchedFactory = core.BatchedFactory
)

var (
	// RunManyLanes executes independent trials on the unified lane engine
	// at an explicit bundle width (<= 0 picks AdaptiveBatchK), streaming
	// per-trial results to an optional emit function.
	RunManyLanes = core.RunManyLanes
	// AdaptiveBatchK picks a bundle width from trials, graph size, and
	// GOMAXPROCS; the width never changes results, only throughput.
	AdaptiveBatchK = core.AdaptiveBatchK
	// RunManyBatched executes independent trials through fused bundles at
	// the default width, returning exactly what RunMany returns for the
	// same seed.
	RunManyBatched = core.RunManyBatched
	// NewBatchedPush builds a K-trial push bundle.
	NewBatchedPush = core.NewBatchedPush
	// NewBatchedPushPull builds a K-trial push-pull bundle.
	NewBatchedPushPull = core.NewBatchedPushPull
	// NewBatchedVisitExchange builds a K-trial visit-exchange bundle.
	NewBatchedVisitExchange = core.NewBatchedVisitExchange
	// NewBatchedMeetExchange builds a K-trial meet-exchange bundle.
	NewBatchedMeetExchange = core.NewBatchedMeetExchange
	// NewBatchedHybrid builds a K-trial push-pull + visit-exchange bundle.
	NewBatchedHybrid = core.NewBatchedHybrid
)

// Coupling exposes the executable proof machinery of Sections 5-6.
type (
	// CouplingConfig configures a coupled push/visit-exchange run.
	CouplingConfig = coupling.Config
	// CouplingResult carries the coupled broadcast times, C-counters, and
	// canonical-walk data.
	CouplingResult = coupling.Result
)

// RunCoupled executes one coupled realization of push and visit-exchange
// sharing their per-vertex neighbor choices (Section 5.1's coupling).
var RunCoupled = coupling.Run

// OddEvenResult carries the Section 6 (odd-even) coupling outcome.
type OddEvenResult = coupling.OddEvenResult

// RunCoupledOddEven executes the odd-even coupling of Section 6, which
// bounds visit-exchange by push on regular graphs (Lemma 22's statistic is
// exposed via MaxSlowdown).
var RunCoupledOddEven = coupling.RunOddEven

// Multi-rumor visit-exchange: many rumors, injected over time, sharing one
// agent system (the Section 3 motivation).
type (
	// Rumor is one rumor's source vertex and injection round.
	Rumor = core.Rumor
	// MultiRumorResult reports per-rumor broadcast times.
	MultiRumorResult = core.MultiRumorResult
)

// RunMultiRumor drives a multi-rumor visit-exchange run to completion.
var RunMultiRumor = core.RunMultiRumor

// Asynchronous rumor spreading (unit-rate Poisson clocks, Section 2's
// related-work model).
type (
	// AsyncConfig configures an asynchronous run.
	AsyncConfig = async.Config
	// AsyncResult reports an asynchronous run (continuous time units).
	AsyncResult = async.Result
)

// Asynchronous protocol names.
const (
	// AsyncPush is asynchronous push.
	AsyncPush = async.Push
	// AsyncPushPull is asynchronous push-pull.
	AsyncPushPull = async.PushPull
)

// RunAsync simulates asynchronous rumor spreading by discrete-event
// simulation.
var RunAsync = async.Run

// Distributed runtime (one goroutine per vertex).
type (
	// DistConfig configures a distributed run.
	DistConfig = distnet.Config
	// DistResult reports a distributed run.
	DistResult = distnet.Result
)

// Distributed protocol names.
const (
	// DistPush runs push over the goroutine-per-node runtime.
	DistPush = distnet.Push
	// DistPushPull runs push-pull over the goroutine-per-node runtime.
	DistPushPull = distnet.PushPull
)

// RunDistributed executes a protocol with one goroutine per vertex and
// mailbox message passing.
var RunDistributed = distnet.Run

// DistAgentConfig configures a distributed visit-exchange run (agents as
// token messages).
type DistAgentConfig = distnet.AgentConfig

// RunDistributedVisitExchange executes visit-exchange over the
// goroutine-per-node runtime, with agents traveling as token messages —
// the paper's "agents are tokens passed between nodes" remark, literally.
var RunDistributedVisitExchange = distnet.RunVisitExchange

// EdgeUsage counts per-edge traversals for bandwidth-fairness analysis.
type EdgeUsage = trace.EdgeUsage

// NewEdgeUsage returns an edge-usage counter; wire its Observe method into
// PushOptions.Observer / AgentOptions.Observer.
var NewEdgeUsage = trace.NewEdgeUsage

// Experiment harness: the registry that regenerates every figure and
// theorem table of the paper.
type (
	// Experiment is one registered experiment.
	Experiment = experiment.Spec
	// ExperimentConfig parameterizes an experiment run.
	ExperimentConfig = experiment.Config
	// ExperimentTable is a rendered result table.
	ExperimentTable = experiment.Table
)

// Experiment scale selectors.
const (
	// ScaleFull runs paper-scale sweeps (what EXPERIMENTS.md reports).
	ScaleFull = experiment.ScaleFull
	// ScaleSmall runs reduced sweeps for tests and quick benchmarks.
	ScaleSmall = experiment.ScaleSmall
)

var (
	// Experiments returns all registered experiments in presentation order.
	Experiments = experiment.All
	// ExperimentByID finds one experiment.
	ExperimentByID = experiment.ByID
)
